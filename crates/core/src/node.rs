//! The coDB node: Local Database + Database Schema + P2P layer.
//!
//! One [`CoDbNode`] is the paper's Figure-1 stack: the LDB/Wrapper role is
//! played by a [`codb_relational::Instance`], the Database Manager by the
//! dispatch in this module plus the update ([`crate::update`]) and query
//! ([`crate::query`]) engines, and the JXTA layer by whichever
//! `codb-net` runtime hosts the node. The "UI" is the public API invoked
//! by harness-injected control messages.

use crate::config::NetworkConfig;
use crate::ids::{NodeId, QueryId, ReqId, RuleName, UpdateId};
use crate::messages::{Body, Envelope};
use crate::query::{QueryExec, QueryResult, Serving};
use crate::reliable::Reliable;
use crate::rules::{CoordinationRule, RuleBook};
use crate::stats::{NetworkReport, NodeReport};
use crate::update::UpdateState;
use codb_net::{Context, Peer, PeerId, PipeConfig, SimTime};
use codb_relational::{ConjunctiveQuery, DatabaseSchema, Instance, NullFactory, Tuple};
use codb_trace::Tracer;
use std::collections::BTreeMap;

/// Tunables of one node.
#[derive(Clone, Debug)]
pub struct NodeSettings {
    /// ARQ retransmission interval.
    pub retransmit_after: SimTime,
    /// Chase-depth safety valve: `UpdateData` whose propagation path would
    /// exceed this many hops is not propagated further (guards against
    /// non-weakly-acyclic rule sets whose chase diverges; DESIGN.md §3).
    pub max_hops: u64,
    /// Pipe parameters used when this node opens pipes to acquaintances.
    pub pipe: PipeConfig,
    /// Keep sender-side per-link firing caches across updates, so a
    /// repeated global update only ships data that is genuinely new
    /// (receiver-side template dedup is always cross-update — correctness
    /// requires it for GLAV rules). Ablation: experiment E15.
    pub incremental_updates: bool,
}

impl Default for NodeSettings {
    fn default() -> Self {
        NodeSettings {
            retransmit_after: SimTime::from_millis(250),
            max_hops: 100_000,
            pipe: PipeConfig::lan(),
            incremental_updates: true,
        }
    }
}

/// Timer id used by the retransmission loop.
pub(crate) const TIMER_RETRANSMIT: u64 = 1;

/// A coDB database peer.
pub struct CoDbNode {
    /// This node's identity.
    pub id: NodeId,
    /// Human-readable name (from the configuration file).
    pub name: String,
    pub(crate) ldb: Instance,
    pub(crate) schema: DatabaseSchema,
    pub(crate) nulls: NullFactory,
    pub(crate) book: RuleBook,
    pub(crate) settings: NodeSettings,
    pub(crate) config_version: u64,
    pub(crate) reliable: Reliable,
    pub(crate) retransmit_armed: bool,
    // ---- update engine ----
    pub(crate) updates: BTreeMap<UpdateId, UpdateState>,
    pub(crate) next_update_seq: u64,
    /// Sender-side per-link firing caches; keyed by `(rule, None)` in
    /// incremental mode, `(rule, Some(update))` otherwise.
    pub(crate) sent_cache: BTreeMap<
        (RuleName, Option<UpdateId>),
        std::collections::BTreeSet<codb_relational::RuleFiring>,
    >,
    /// Receiver-side per-link template caches (always cross-update).
    pub(crate) recv_cache:
        BTreeMap<RuleName, std::collections::BTreeSet<codb_relational::RuleFiring>>,
    // ---- query engine ----
    pub(crate) next_query_seq: u64,
    pub(crate) next_req_seq: u64,
    pub(crate) queries: BTreeMap<QueryId, QueryExec>,
    pub(crate) serving: BTreeMap<ReqId, Serving>,
    pub(crate) nested_parent: BTreeMap<ReqId, crate::query::ParentRef>,
    /// Finished query results, for the harness to collect.
    pub completed_queries: BTreeMap<QueryId, QueryResult>,
    /// Peers discovered on the advertisement board (Figure 3 of the
    /// paper: "which other nodes (not acquaintances) it has discovered").
    pub discovered: std::collections::BTreeSet<NodeId>,
    // ---- crash rejoin (see crate::rejoin) ----
    /// Set when this node recovered from disk and has not yet announced
    /// its new incarnation; cleared once the `Rejoin` round is posted.
    pub(crate) pending_rejoin: bool,
    /// Highest rejoin epoch processed per peer (duplicate/stale `Rejoin`
    /// suppression).
    pub(crate) rejoin_epochs: BTreeMap<NodeId, u64>,
    /// Acquaintances that acked this incarnation's `Rejoin`.
    pub(crate) rejoin_acks: std::collections::BTreeSet<NodeId>,
    // ---- statistics module ----
    pub(crate) report: NodeReport,
    // ---- super-peer role ----
    pub(crate) superpeer_config: Option<NetworkConfig>,
    /// Statistics collected from the network (super-peer only).
    pub collected: NetworkReport,
    // ---- durability (codb-store) ----
    /// Attached store; when present, every applied update delta and local
    /// insert is WAL-logged so the node can crash and rejoin.
    pub(crate) persist: Option<codb_store::Store>,
    /// First storage error, latched; the store detaches on error so a
    /// diverged log never keeps growing silently.
    pub(crate) persist_error: Option<String>,
    /// Flight-recorder handle (disabled by default): update applies, rule
    /// firings, DS credit movements and rejoin steps emit typed events.
    pub(crate) tracer: Tracer,
}

impl CoDbNode {
    /// Creates a node with the given shared schema, seed data and the rules
    /// it participates in.
    pub fn new(
        id: NodeId,
        name: impl Into<String>,
        schema: DatabaseSchema,
        data: Vec<(String, Tuple)>,
        rules: &[CoordinationRule],
        settings: NodeSettings,
    ) -> Self {
        let mut ldb = Instance::with_schema(&schema);
        for (rel, tuple) in data {
            ldb.insert(&rel, tuple).expect("seed data validated by config");
        }
        let retransmit_after = settings.retransmit_after;
        CoDbNode {
            id,
            name: name.into(),
            ldb,
            schema,
            nulls: NullFactory::new(id.0),
            book: RuleBook::for_node(id, rules),
            settings,
            config_version: 0,
            reliable: Reliable::new(retransmit_after),
            retransmit_armed: false,
            updates: BTreeMap::new(),
            next_update_seq: 0,
            sent_cache: BTreeMap::new(),
            recv_cache: BTreeMap::new(),
            next_query_seq: 0,
            next_req_seq: 0,
            queries: BTreeMap::new(),
            serving: BTreeMap::new(),
            nested_parent: BTreeMap::new(),
            completed_queries: BTreeMap::new(),
            discovered: std::collections::BTreeSet::new(),
            pending_rejoin: false,
            rejoin_epochs: BTreeMap::new(),
            rejoin_acks: std::collections::BTreeSet::new(),
            report: NodeReport::new(id),
            superpeer_config: None,
            collected: NetworkReport::default(),
            persist: None,
            persist_error: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a flight-recorder handle to this node (and to its store,
    /// if one is already open). Events carry the node id; string fields
    /// (rule names, store paths) go through the tracer's intern table.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        if let Some(store) = &mut self.persist {
            store.attach_tracer(tracer);
        }
        self.tracer = tracer.clone();
    }

    /// Marks this node as the super-peer holding `config`.
    pub fn with_superpeer_config(mut self, config: NetworkConfig) -> Self {
        self.superpeer_config = Some(config);
        self
    }

    /// The Local Database.
    pub fn ldb(&self) -> &Instance {
        &self.ldb
    }

    /// The shared Database Schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// This node's rule book (links).
    pub fn rule_book(&self) -> &RuleBook {
        &self.book
    }

    /// The statistics module's current report ("each node maintains a
    /// global update processing report and makes it available for the user
    /// on request").
    pub fn report(&self) -> &NodeReport {
        &self.report
    }

    /// Answers a query purely from the LDB, without touching the network —
    /// what a local query costs *after* a global update has materialised
    /// everything.
    pub fn local_answer(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<Vec<Tuple>, codb_relational::eval::EvalError> {
        codb_relational::answer_query(query, &self.ldb)
    }

    /// The update state for `update`, if this node has seen it.
    pub fn update_state(&self, update: UpdateId) -> Option<&UpdateState> {
        self.updates.get(&update)
    }

    /// Captures a durable snapshot of the LDB plus the null factory (see
    /// [`codb_relational::Snapshot`]).
    pub fn snapshot(&self) -> codb_relational::Snapshot {
        codb_relational::Snapshot::capture(&self.ldb, &self.nulls)
    }

    /// Marked nulls this node's factory has invented so far (a cheap read
    /// — comparing factory counters does not require capturing a
    /// snapshot).
    pub fn nulls_invented(&self) -> u64 {
        self.nulls.invented()
    }

    /// Restores a snapshot, replacing the LDB and null-factory state.
    /// Does **not** touch an attached store; use [`CoDbNode::open_persistence`]
    /// for disk-backed recovery.
    pub fn restore(&mut self, snapshot: codb_relational::Snapshot) {
        self.ldb = snapshot.instance;
        self.nulls = snapshot.nulls;
    }

    /// Opens durable persistence rooted at `dir`: recovers existing state
    /// (latest valid snapshot + WAL-tail replay, including the
    /// receiver-side dedup caches and the protocol counters) when the
    /// directory holds a store, otherwise initialises a fresh store from
    /// the node's current state. From then on every applied update delta,
    /// local insert and id-counter bump is WAL-logged. Returns
    /// `Some(stats)` when state was recovered from disk, `None` when a
    /// fresh store was initialised.
    ///
    /// `codec` picks the on-disk payload encoding for *new* files; an
    /// existing store recovers whatever encodings its files carry (each
    /// file's format byte wins) and converts to `codec` at the next
    /// checkpoint rotation.
    ///
    /// A recovery marks the node rejoin-pending: the `Rejoin`
    /// announcement ([`crate::rejoin`]) is posted on the node's next
    /// start — or, when persistence is opened on an already-started
    /// network, on its next event of any kind. Neighbors invalidate their
    /// incremental sent-caches toward this node only once that
    /// announcement is processed, so an update racing the handshake may
    /// need one follow-up update to fully reconverge.
    pub fn open_persistence(
        &mut self,
        dir: &std::path::Path,
        policy: codb_store::SyncPolicy,
        codec: codb_store::Codec,
    ) -> Result<Option<codb_store::RecoveryStats>, codb_store::StoreError> {
        self.open_persistence_with(dir, policy, codec, None)
    }

    /// [`CoDbNode::open_persistence`] with an optional shared group-commit
    /// scheduler: under [`codb_store::SyncPolicy::GroupCommit`] the
    /// node's WAL joins `group`, coalescing its fsyncs with every other
    /// store registered there (the many-node single-host amortisation;
    /// `CoDbNetwork::open_persistence_all` shares one scheduler across
    /// all nodes this way). Ignored for per-store policies.
    pub fn open_persistence_with(
        &mut self,
        dir: &std::path::Path,
        policy: codb_store::SyncPolicy,
        codec: codb_store::Codec,
        group: Option<&codb_store::FsyncScheduler>,
    ) -> Result<Option<codb_store::RecoveryStats>, codb_store::StoreError> {
        if codb_store::Store::exists(dir) {
            let (store, recovered) = codb_store::Store::open_with(dir, policy, codec, group)?;
            let stats = recovered.stats();
            self.ldb = recovered.instance;
            self.nulls = recovered.nulls;
            self.recv_cache = recovered.recv_cache;
            // Resume (not restart) the protocol id space: the persisted
            // counters pick up where the dead incarnation stopped, so a
            // recovered node can initiate updates and queries again.
            self.next_update_seq = recovered.counters.update_seq;
            self.next_query_seq = recovered.counters.query_seq;
            self.next_req_seq = recovered.counters.req_seq;
            // New incarnation: stamp a higher epoch on outgoing envelopes
            // so peers reset their per-sender duplicate state (this node's
            // transport sequence numbers start over), and announce the
            // incarnation to acquaintances on start (crate::rejoin).
            self.reliable.set_epoch(recovered.epoch);
            self.pending_rejoin = true;
            self.adopt_store(store);
            Ok(Some(stats))
        } else {
            let store = codb_store::Store::create_with(
                dir,
                &self.snapshot(),
                &self.recv_cache,
                &self.counters(),
                policy,
                codec,
                group,
            )?;
            self.adopt_store(store);
            Ok(None)
        }
    }

    /// Installs a freshly opened store, inheriting this node's tracer so a
    /// recorder attached before `open_persistence` still sees WAL events.
    fn adopt_store(&mut self, mut store: codb_store::Store) {
        if self.tracer.is_enabled() {
            store.attach_tracer(&self.tracer);
        }
        self.persist = Some(store);
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&codb_store::Store> {
        self.persist.as_ref()
    }

    /// The first storage error, if logging ever failed (the store detaches
    /// itself at that point).
    pub fn persist_error(&self) -> Option<&str> {
        self.persist_error.as_deref()
    }

    /// Checkpoint: snapshots the current state to disk and rotates /
    /// compacts the WAL. Returns `false` when no store is attached.
    pub fn checkpoint(&mut self) -> Result<bool, codb_store::StoreError> {
        let snap = self.snapshot();
        let counters = self.counters();
        match &mut self.persist {
            Some(store) => {
                store.checkpoint(&snap, &self.recv_cache, &counters)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// This node's incarnation epoch, as stamped on its envelopes and
    /// minted into its update/query ids (0 until a store recovery bumps
    /// it).
    pub fn epoch(&self) -> u64 {
        self.reliable.epoch()
    }

    /// The protocol counters as a durable record (each field is the next
    /// value to hand out).
    pub(crate) fn counters(&self) -> codb_store::ProtocolCounters {
        codb_store::ProtocolCounters {
            update_seq: self.next_update_seq,
            query_seq: self.next_query_seq,
            req_seq: self.next_req_seq,
        }
    }

    /// WAL-logs the current protocol counters (called after every id
    /// mint, so a recovered node resumes its id space; cheap — id mints
    /// are rare next to data traffic).
    pub(crate) fn log_counters(&mut self) {
        if self.persist.is_some() {
            let record = codb_store::WalRecord::Counters { counters: self.counters() };
            self.log_wal(record);
        }
    }

    /// WAL-logs `record`, latching the first storage error and detaching
    /// the store (a log that missed a record must not keep growing).
    pub(crate) fn log_wal(&mut self, record: codb_store::WalRecord) {
        if let Some(store) = &mut self.persist {
            if let Err(e) = store.append(&record) {
                self.persist_error = Some(e.to_string());
                self.persist = None;
            }
        }
    }

    /// Local write (the demo UI's data entry): inserts one tuple into the
    /// LDB. The data propagates on the next global update.
    pub fn insert_local(
        &mut self,
        relation: &str,
        tuple: Tuple,
    ) -> Result<bool, codb_relational::SchemaError> {
        let record = self.persist.is_some().then(|| codb_store::WalRecord::LocalInsert {
            relation: relation.to_owned(),
            tuple: tuple.clone(),
        });
        let added = self.ldb.insert(relation, tuple)?;
        if added {
            if let Some(record) = record {
                self.log_wal(record);
            }
        }
        Ok(added)
    }

    // ---- plumbing shared by the engines ----

    /// Sends `body` to `to` reliably: assigns a transport seq, records the
    /// message for retransmission, bumps Dijkstra–Scholten deficit when
    /// applicable, counts statistics, arms the retransmit timer. A peer
    /// behind the rejoin barrier still gets new sends — they double as
    /// liveness probes (a healed partition has no handshake to wait for)
    /// and park alongside the held backlog only if they, too, exhaust
    /// their retransmission budget.
    pub(crate) fn post(&mut self, ctx: &mut Context<Envelope>, to: NodeId, body: Body) {
        if body.is_ds_counted() {
            if let Some(u) = body.update_id() {
                let now = ctx.now();
                let st = self.updates.entry(u).or_insert_with(|| UpdateState::new(u, now));
                st.deficit += 1;
            }
        }
        self.report.count_sent(body.kind());
        let env = self.reliable.wrap(to, body);
        ctx.send(to.peer(), env);
        self.arm_retransmit(ctx);
    }

    /// Lifts the rejoin barrier toward `peer` (any message from it proves
    /// the peer is reachable again): re-sends every parked message in seq
    /// order under the original seqs and re-arms retransmission. No-op
    /// unless the peer was barred.
    pub(crate) fn release_barrier(&mut self, ctx: &mut Context<Envelope>, peer: NodeId) {
        if !self.reliable.is_barred(peer) {
            return;
        }
        let released = self.reliable.release_peer(peer);
        let count = released.len() as u64;
        for (to, env) in released {
            self.report.count_sent("barrier_released");
            ctx.send(to.peer(), env);
        }
        self.tracer.emit_with(|| codb_trace::TraceEvent::BarrierRelease {
            peer: self.id.0,
            toward: peer.0,
            released: count,
        });
        self.arm_retransmit(ctx);
    }

    /// Sends an unsequenced transport ack, echoing the epoch of the
    /// acknowledged envelope so the sender can tell which incarnation's
    /// seq is being retired.
    pub(crate) fn post_ack(
        &mut self,
        ctx: &mut Context<Envelope>,
        to: NodeId,
        seq: u64,
        epoch: u64,
    ) {
        self.report.count_sent("ack");
        ctx.send(to.peer(), Envelope { seq: None, epoch, body: Body::Ack { seq } });
    }

    pub(crate) fn arm_retransmit(&mut self, ctx: &mut Context<Envelope>) {
        // Parked (barrier-held) messages must not keep the timer alive:
        // they wait for the peer's next incarnation, not the clock.
        if !self.retransmit_armed && self.reliable.has_retransmittable() {
            self.retransmit_armed = true;
            ctx.set_timer(self.settings.retransmit_after, TIMER_RETRANSMIT);
        }
    }

    /// Opens pipes to all acquaintances (the paper's topology discovery:
    /// pipes are created per coordination rule, and several rules w.r.t.
    /// the same node share one pipe).
    fn open_acquaintance_pipes(&mut self, ctx: &mut Context<Envelope>) {
        for acq in self.book.acquaintances(self.id) {
            ctx.open_pipe(acq.peer(), self.settings.pipe);
        }
    }
}

impl Peer<Envelope> for CoDbNode {
    fn on_start(&mut self, ctx: &mut Context<Envelope>) {
        ctx.advertise(codb_net::Advertisement::peer(self.id.peer(), "codb-node"));
        if self.superpeer_config.is_some() {
            ctx.advertise(codb_net::Advertisement::service(self.id.peer(), "super-peer"));
            // The super-peer keeps a pipe to every declared node so it can
            // broadcast rule files and collect statistics.
            let ids: Vec<NodeId> =
                self.superpeer_config.as_ref().map(|c| c.node_ids()).unwrap_or_default();
            for id in ids {
                if id != self.id {
                    ctx.open_pipe(id.peer(), self.settings.pipe);
                }
            }
        }
        self.open_acquaintance_pipes(ctx);
        // A recovered node's first act is to announce its new incarnation
        // so neighbors drop the sent-caches pointed at its dead life.
        self.announce_rejoin(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<Envelope>, from: PeerId, env: Envelope) {
        // A node recovered *after* its start event (persistence opened on
        // a live network) still owes the handshake: announce on its next
        // activity of any kind. No-op when nothing is pending.
        self.announce_rejoin(ctx);
        let from = NodeId::from(from);
        self.report.count_received(env.body.kind());

        // Any envelope from a barred peer proves it is reachable again
        // (typically its new incarnation's Rejoin): release the parked
        // traffic before dispatching, so held data and handshake messages
        // flow the moment the peer is back.
        self.release_barrier(ctx, from);

        // Transport ack: retire and done. Acks echo the epoch of the
        // envelope they acknowledge; an ack for a previous incarnation's
        // envelope must not retire a same-seq message of this incarnation
        // (sequence numbers restart at recovery).
        if let Body::Ack { seq } = env.body {
            if env.epoch == self.reliable.epoch() {
                self.reliable.on_ack(seq);
            }
            return;
        }
        // Ack every sequenced message, then drop duplicates (and stale
        // envelopes from a previous incarnation of the sender).
        if let Some(seq) = env.seq {
            self.post_ack(ctx, from, seq, env.epoch);
            if !self.reliable.should_process(from, env.epoch, Some(seq)) {
                return;
            }
        }

        match env.body {
            Body::Ack { .. } => unreachable!("handled above"),
            // ---- update protocol (crate::update) ----
            Body::UpdateRequest { .. }
            | Body::DemandLink { .. }
            | Body::UpdateData { .. }
            | Body::LinkClosed { .. } => self.dispatch_ds(ctx, from, env.body),
            Body::DsAck { update, credits } => self.handle_ds_ack(ctx, update, credits),
            Body::UpdateComplete { update } => self.handle_update_complete(ctx, from, update),
            // ---- crash rejoin (crate::rejoin) ----
            Body::Rejoin { epoch } => self.handle_rejoin(ctx, from, epoch),
            Body::RejoinAck { epoch } => self.handle_rejoin_ack(from, epoch),
            Body::RejoinRepair { rule, firings } => self.handle_rejoin_repair(ctx, rule, firings),
            // ---- query protocol (crate::query) ----
            Body::QueryRequest { req, rule, path } => {
                self.handle_query_request(ctx, from, req, rule, path)
            }
            Body::QueryAnswer { req, firings, closed } => {
                self.handle_query_answer(ctx, from, req, firings, closed)
            }
            // ---- super-peer / admin (crate::superpeer) ----
            Body::RulesFile { config } => self.handle_rules_file(ctx, *config),
            Body::StatsRequest => self.handle_stats_request(ctx, from),
            Body::StatsReport { report } => self.collected.ingest(*report),
            // ---- harness control ----
            Body::StartUpdate => self.start_update(ctx),
            Body::StartScopedUpdate { relations } => self.start_scoped_update(ctx, relations),
            Body::StartQuery { query, fetch } => self.start_query(ctx, *query, fetch),
            Body::CollectStats => self.handle_collect_stats(ctx),
            Body::BroadcastRules => self.handle_broadcast_rules(ctx),
            Body::TriggerDiscovery => {
                for ad in ctx.discover() {
                    self.discovered.insert(NodeId::from(ad.peer));
                }
                self.discovered.remove(&self.id);
            }
            Body::IngestLocal { relation, tuple } => {
                // Schema violations are the harness's bug, not a protocol
                // condition; surface them in the per-kind stats.
                if self.insert_local(&relation, tuple).is_err() {
                    self.report.count_received("ingest_rejected");
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Envelope>, timer: u64) {
        self.announce_rejoin(ctx);
        if timer == TIMER_RETRANSMIT {
            self.retransmit_armed = false;
            let round = self.reliable.retransmission_round();
            for (to, env) in round.resend {
                self.report.count_sent("retransmit");
                ctx.send(to.peer(), env);
            }
            for (peer, held) in round.barred {
                // The peer is presumed crashed mid-handshake: its update
                // data and handshake traffic just parked behind the rejoin
                // barrier. The DS deficit for parked messages is *held*,
                // not surrendered — the update resumes (and completes)
                // when the peer's new incarnation releases the barrier.
                for _ in 0..held {
                    self.report.count_sent("barrier_parked");
                }
                self.tracer.emit_with(|| codb_trace::TraceEvent::BarrierHold {
                    peer: self.id.0,
                    toward: peer.0,
                    held,
                });
            }
            for o in round.abandoned {
                // Non-barrier traffic toward the presumed-dead peer is
                // dropped for good. Any DS credit it carried cannot come
                // back: surrender the deficit so this node can still
                // disengage (DESIGN.md §3).
                self.report.count_sent("abandoned");
                if o.body.is_ds_counted() {
                    if let Some(u) = o.body.update_id() {
                        self.handle_ds_ack(ctx, u, 1);
                    }
                }
            }
            self.arm_retransmit(ctx);
        }
    }
}
