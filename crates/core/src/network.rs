//! The simulation harness: builds a coDB network from a configuration,
//! injects user actions (the demo UI's buttons), runs the simulator to
//! quiescence and extracts results and reports.

use crate::config::{ConfigError, NetworkConfig};
use crate::ids::{NodeId, QueryId, UpdateId};
use crate::messages::{Body, Envelope};
use crate::node::{CoDbNode, NodeSettings};
use crate::query::QueryResult;
use crate::stats::{NetworkReport, UpdateSummary};
use codb_net::{PeerId, SimBuilder, SimConfig, SimNet, SimTime};
use codb_relational::{parse_query, ConjunctiveQuery};

/// Peer id used by the harness when injecting control messages.
pub const HARNESS_PEER: PeerId = PeerId(u64::MAX);

/// Outcome of one global update run.
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// The update's id.
    pub update: UpdateId,
    /// Simulated time from injection to network quiescence.
    pub duration: SimTime,
    /// Protocol messages sent during the run (all kinds, acks included).
    pub messages: u64,
    /// Payload bytes sent during the run.
    pub bytes: u64,
    /// Aggregated per-node statistics for this update.
    pub summary: UpdateSummary,
}

/// Outcome of one query run.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The query's id.
    pub query: QueryId,
    /// The result as delivered to the user.
    pub result: QueryResult,
    /// Simulated time from injection to network quiescence.
    pub duration: SimTime,
    /// Protocol messages sent during the run.
    pub messages: u64,
    /// Payload bytes sent during the run.
    pub bytes: u64,
}

/// A built coDB network running on the deterministic simulator.
pub struct CoDbNetwork {
    sim: SimNet<Envelope, CoDbNode>,
    config: NetworkConfig,
    superpeer: Option<NodeId>,
    settings: NodeSettings,
    /// The shared group-commit fsync scheduler, created lazily the first
    /// time persistence is opened under a
    /// [`codb_store::SyncPolicy::GroupCommit`] policy. One scheduler
    /// serves every node's store on this (single-host) network, and node
    /// restarts rejoin it.
    fsync_sched: Option<codb_store::FsyncScheduler>,
}

impl CoDbNetwork {
    /// Builds the network from `config` (one peer per declared node, pipes
    /// opened per coordination rule) and runs the start events.
    pub fn build(config: NetworkConfig, sim_config: SimConfig) -> Result<Self, ConfigError> {
        Self::build_with(config, sim_config, NodeSettings::default(), false)
    }

    /// [`CoDbNetwork::build`] plus a super-peer holding the configuration
    /// (one extra peer with pipes to every node).
    pub fn build_with_superpeer(
        config: NetworkConfig,
        sim_config: SimConfig,
    ) -> Result<Self, ConfigError> {
        Self::build_with(config, sim_config, NodeSettings::default(), true)
    }

    /// Fully parameterised build.
    pub fn build_with(
        config: NetworkConfig,
        sim_config: SimConfig,
        settings: NodeSettings,
        with_superpeer: bool,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        // Nodes open their own pipes (one per coordination-rule
        // acquaintance) from `on_start`, so the builder only needs the
        // peer population; pipes still follow `Topology::edges()` via the
        // rules the scenario generator derived from it.
        let mut nodes: std::collections::HashMap<PeerId, CoDbNode> = config
            .nodes
            .iter()
            .map(|nc| {
                let node = CoDbNode::new(
                    nc.id,
                    &nc.name,
                    nc.schema.clone(),
                    nc.data.clone(),
                    &config.rules,
                    settings.clone(),
                );
                (nc.id.peer(), node)
            })
            .collect();
        let superpeer = with_superpeer.then(|| {
            let id = NodeId(config.nodes.iter().map(|n| n.id.0 + 1).max().unwrap_or(0));
            let node = CoDbNode::new(
                id,
                "super-peer",
                codb_relational::DatabaseSchema::new(),
                Vec::new(),
                &[],
                settings.clone(),
            )
            .with_superpeer_config(config.clone());
            nodes.insert(id.peer(), node);
            id
        });
        // Spawn in declaration order (super-peer last) — the same event
        // sequence the old hand-rolled add_peer loop produced.
        let sim = SimBuilder::new(sim_config)
            .peers(config.nodes.iter().map(|nc| nc.id.peer()).chain(superpeer.map(|id| id.peer())))
            .spawn(|id| nodes.remove(&id).expect("every registered peer has a node"));
        let mut net = CoDbNetwork { sim, config, superpeer, settings, fsync_sched: None };
        net.sim.run_until_quiescent(); // process start events (pipes, adverts)
        Ok(net)
    }

    /// Attaches a flight-recorder handle to the whole stack: the
    /// simulator (net events), every node (protocol events, including
    /// already-open stores) and the shared group-commit scheduler (fsync
    /// drains). Nodes restarted or persisted later inherit it.
    pub fn attach_tracer(&mut self, tracer: &codb_trace::Tracer) {
        self.sim.attach_tracer(tracer.clone());
        for id in self.sim.peer_ids() {
            if let Some(node) = self.sim.peer_mut(id) {
                node.attach_tracer(tracer);
            }
        }
        if let Some(sched) = &self.fsync_sched {
            sched.attach_tracer(tracer.clone());
        }
    }

    /// The underlying simulator (for failure injection and inspection).
    pub fn sim(&self) -> &SimNet<Envelope, CoDbNode> {
        &self.sim
    }

    /// Mutable simulator access.
    pub fn sim_mut(&mut self) -> &mut SimNet<Envelope, CoDbNode> {
        &mut self.sim
    }

    /// The configuration the network was built from.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The super-peer's id, if one was created.
    pub fn superpeer(&self) -> Option<NodeId> {
        self.superpeer
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &CoDbNode {
        self.sim.peer(id.peer()).expect("node exists")
    }

    /// Resolve a node by configuration name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.config.node_by_name(name).map(|n| n.id)
    }

    /// Injects a control message and runs the network to quiescence.
    pub fn run_control(&mut self, to: NodeId, body: Body) -> SimTime {
        let t0 = self.sim.now();
        self.sim.inject(HARNESS_PEER, to.peer(), Envelope::control(body));
        self.sim.run_until_quiescent();
        self.sim.now().saturating_sub(t0)
    }

    /// Starts a global update at `origin` and runs to quiescence.
    pub fn run_update(&mut self, origin: NodeId) -> UpdateOutcome {
        let node = self.node(origin);
        let update = UpdateId { origin, epoch: node.epoch(), seq: node.update_state_seq() };
        let (m0, b0) = (self.sim.stats().sent, self.sim.stats().bytes_sent);
        self.run_control(origin, Body::StartUpdate);
        let stats = self.sim.stats();
        let summary =
            self.network_report().summarise(update).expect("update ran on at least the origin");
        UpdateOutcome {
            update,
            // Message-driven duration (first start to last close), so idle
            // retransmission timers waiting out their deadline after the
            // work is done don't inflate the measurement.
            duration: summary.total_time,
            // Exclude the injected control message itself.
            messages: stats.sent - m0 - 1,
            bytes: stats.bytes_sent - b0,
            summary,
        }
    }

    /// Starts a query-dependent (scoped) update at `origin`: only data
    /// feeding `relations` is materialised. Returns the outcome.
    pub fn run_scoped_update(&mut self, origin: NodeId, relations: Vec<String>) -> UpdateOutcome {
        let node = self.node(origin);
        let update = UpdateId { origin, epoch: node.epoch(), seq: node.update_state_seq() };
        let (m0, b0) = (self.sim.stats().sent, self.sim.stats().bytes_sent);
        self.run_control(origin, Body::StartScopedUpdate { relations });
        let stats = self.sim.stats();
        let summary =
            self.network_report().summarise(update).expect("update ran on at least the origin");
        UpdateOutcome {
            update,
            duration: summary.total_time,
            messages: stats.sent - m0 - 1,
            bytes: stats.bytes_sent - b0,
            summary,
        }
    }

    /// Runs a query at `node`; `fetch` selects query-time network
    /// answering vs. a purely local answer.
    pub fn run_query(
        &mut self,
        node: NodeId,
        query: ConjunctiveQuery,
        fetch: bool,
    ) -> QueryOutcome {
        let n = self.node(node);
        let query_id = QueryId { origin: node, epoch: n.epoch(), seq: n.query_seq() };
        let (m0, b0) = (self.sim.stats().sent, self.sim.stats().bytes_sent);
        let t0 = self.sim.now();
        self.run_control(node, Body::StartQuery { query: Box::new(query), fetch });
        let stats = self.sim.stats();
        let result = self
            .node(node)
            .completed_queries
            .get(&query_id)
            .cloned()
            .expect("query completed at quiescence");
        QueryOutcome {
            query: query_id,
            // Time until the answer was assembled (not until the last idle
            // retransmission timer drained).
            duration: result.finished_at.saturating_sub(t0),
            result,
            // Exclude the injected control message itself.
            messages: stats.sent - m0 - 1,
            bytes: stats.bytes_sent - b0,
        }
    }

    /// [`CoDbNetwork::run_query`] from query text.
    pub fn run_query_text(
        &mut self,
        node: NodeId,
        query: &str,
        fetch: bool,
    ) -> Result<QueryOutcome, codb_relational::ParseError> {
        Ok(self.run_query(node, parse_query(query)?, fetch))
    }

    /// Super-peer: re-broadcast a (new) configuration, reconfiguring every
    /// node's rules and pipes at runtime.
    pub fn broadcast_rules(&mut self, config: NetworkConfig) -> Result<SimTime, ConfigError> {
        config.validate()?;
        let sp = self.superpeer.expect("network built with a super-peer");
        self.config = config.clone();
        self.sim.peer_mut(sp.peer()).expect("super-peer exists").set_superpeer_config(config);
        Ok(self.run_control(sp, Body::BroadcastRules))
    }

    /// Super-peer: collect statistics from every node over the network and
    /// return the aggregated report.
    pub fn collect_stats(&mut self) -> NetworkReport {
        let sp = self.superpeer.expect("network built with a super-peer");
        self.run_control(sp, Body::CollectStats);
        self.node(sp).collected.clone()
    }

    /// Harness shortcut: assemble the network report by reading every
    /// node's statistics module directly (no messages). The super-peer path
    /// ([`CoDbNetwork::collect_stats`]) is validated against this in tests.
    pub fn network_report(&self) -> NetworkReport {
        let mut report = NetworkReport::default();
        for (_, node) in self.sim.peers() {
            if Some(node.id) == self.superpeer {
                continue;
            }
            let mut r = node.report().clone();
            r.ldb_tuples = node.ldb().tuple_count() as u64;
            report.ingest(r);
        }
        report
    }

    /// Total tuples across all node LDBs.
    pub fn total_tuples(&self) -> usize {
        self.sim.peers().map(|(_, n)| n.ldb().tuple_count()).sum()
    }

    // ---- durability (codb-store) ----

    /// The per-node store directory under a data-dir root: one
    /// subdirectory per node, keyed by the configuration name.
    pub fn node_data_dir(root: &std::path::Path, name: &str) -> std::path::PathBuf {
        root.join(name)
    }

    /// Opens persistence for one node under `dir` (exact directory, not a
    /// root): recovers existing on-disk state or initialises a fresh store
    /// from the node's current state. Returns `Some(stats)` on recovery,
    /// `None` for a fresh store.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not alive (same contract as [`CoDbNetwork::node`];
    /// a crashed node must be restarted via
    /// [`CoDbNetwork::restart_node_from_disk`], not re-attached).
    pub fn open_node_persistence(
        &mut self,
        id: NodeId,
        dir: &std::path::Path,
        policy: codb_store::SyncPolicy,
        codec: codb_store::Codec,
    ) -> Result<Option<codb_store::RecoveryStats>, codb_store::StoreError> {
        let sched = self.scheduler_for(policy)?;
        self.sim.peer_mut(id.peer()).expect("node exists").open_persistence_with(
            dir,
            policy,
            codec,
            sched.as_ref(),
        )
    }

    /// The network's shared scheduler for `policy`: lazily created on the
    /// first group-commit open so every node (and every later restart)
    /// joins the same batching point; `None` for per-store policies. A
    /// later group-commit open asking for *different* thresholds is a
    /// typed [`codb_store::StoreError::SchedulerMismatch`] — silently
    /// joining the existing scheduler would hand the store a durability
    /// ack window it never agreed to.
    fn scheduler_for(
        &mut self,
        policy: codb_store::SyncPolicy,
    ) -> Result<Option<codb_store::FsyncScheduler>, codb_store::StoreError> {
        let codb_store::SyncPolicy::GroupCommit { max_batch, max_records } = policy else {
            return Ok(None);
        };
        match &self.fsync_sched {
            Some(sched) if sched.max_batch() == max_batch && sched.max_records() == max_records => {
                Ok(Some(sched.clone()))
            }
            // A scheduler no store ever joined (e.g. the open that
            // created it failed) pins nothing: replace it freely.
            Some(sched) if sched.stats().registered > 0 => {
                Err(codb_store::StoreError::SchedulerMismatch {
                    existing: codb_store::SyncPolicy::GroupCommit {
                        max_batch: sched.max_batch(),
                        max_records: sched.max_records(),
                    }
                    .to_string(),
                    requested: policy.to_string(),
                })
            }
            _ => {
                let sched = codb_store::FsyncScheduler::for_policy(policy);
                self.fsync_sched = sched.clone();
                Ok(sched)
            }
        }
    }

    /// The shared group-commit fsync scheduler, if persistence was opened
    /// under [`codb_store::SyncPolicy::GroupCommit`] — the E18 hook for
    /// reading drain/fsync counters and for explicit end-of-round
    /// flushes ([`codb_store::FsyncScheduler::flush_all`]).
    pub fn fsync_scheduler(&self) -> Option<&codb_store::FsyncScheduler> {
        self.fsync_sched.as_ref()
    }

    /// Opens persistence for every configured node under
    /// `root/<node-name>`. Returns the names of nodes whose state was
    /// recovered from disk (the rest were freshly initialised).
    ///
    /// Under [`codb_store::SyncPolicy::GroupCommit`] this constructs
    /// **one** [`codb_store::FsyncScheduler`] shared by all nodes (see
    /// [`CoDbNetwork::fsync_scheduler`]): the whole single-host
    /// deployment batches its WAL fsyncs through a single host-wide
    /// policy instead of paying one independent fsync stream per store.
    pub fn open_persistence_all(
        &mut self,
        root: &std::path::Path,
        policy: codb_store::SyncPolicy,
        codec: codb_store::Codec,
    ) -> Result<Vec<String>, codb_store::StoreError> {
        let nodes: Vec<(NodeId, String)> =
            self.config.nodes.iter().map(|n| (n.id, n.name.clone())).collect();
        let mut recovered = Vec::new();
        for (id, name) in nodes {
            if self
                .open_node_persistence(id, &Self::node_data_dir(root, &name), policy, codec)?
                .is_some()
            {
                recovered.push(name);
            }
        }
        Ok(recovered)
    }

    /// Checkpoints one node's store (snapshot + WAL rotation/compaction).
    /// Returns `false` when the node has no store attached.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not alive (same contract as [`CoDbNetwork::node`]).
    pub fn checkpoint_node(&mut self, id: NodeId) -> Result<bool, codb_store::StoreError> {
        self.sim.peer_mut(id.peer()).expect("node exists").checkpoint()
    }

    /// Kills a node: its in-memory state (including protocol caches and
    /// any attached store handle) is dropped, its pipes close, in-flight
    /// messages to it are discarded. Durable state stays on disk. Returns
    /// `false` when the node was not present.
    pub fn crash_node(&mut self, id: NodeId) -> bool {
        self.sim.remove_peer(id.peer()).is_some()
    }

    /// Restarts a crashed (or departed) node from its data directory: the
    /// node is rebuilt from the configuration *without* seed data, its
    /// state recovered from disk (snapshot + WAL replay, including the
    /// protocol counters), and re-added to the network. Start events run
    /// before this returns — pipe opening, advertisement, and the crash
    /// rejoin handshake ([`crate::rejoin`]): the node announces its new
    /// incarnation epoch and every neighbor invalidates the incremental
    /// sent-caches pointed at it. A restarted node is a first-class peer
    /// again — it may initiate updates and queries (its persisted
    /// counters resume the id space, and `(epoch, seq)`-keyed ids cannot
    /// collide with the dead incarnation's even if the counters were
    /// lost). Returns the recovery summary (generation, WAL records
    /// replayed, torn-tail flag, epoch).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a configured node.
    pub fn restart_node_from_disk(
        &mut self,
        id: NodeId,
        dir: &std::path::Path,
        policy: codb_store::SyncPolicy,
        codec: codb_store::Codec,
    ) -> Result<codb_store::RecoveryStats, codb_store::StoreError> {
        let stats = self.restart_node_from_disk_live(id, dir, policy, codec)?;
        self.sim.run_until_quiescent();
        Ok(stats)
    }

    /// [`CoDbNetwork::restart_node_from_disk`] without the trailing drain:
    /// the restarted node is re-added and its start events (pipe opening,
    /// the `Rejoin` announcement) are *scheduled* but not run to
    /// quiescence. This is the fault-injection hook for restarting a node
    /// **mid-round**, so its rejoin handshake — and the barrier release +
    /// repair it triggers at every neighbor — interleaves with live
    /// update traffic instead of running in a conveniently idle network.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a configured node.
    pub fn restart_node_from_disk_live(
        &mut self,
        id: NodeId,
        dir: &std::path::Path,
        policy: codb_store::SyncPolicy,
        codec: codb_store::Codec,
    ) -> Result<codb_store::RecoveryStats, codb_store::StoreError> {
        let nc = self
            .config
            .nodes
            .iter()
            .find(|n| n.id == id)
            .unwrap_or_else(|| panic!("node {id:?} not in configuration"));
        if !codb_store::Store::exists(dir) {
            // An empty data dir means there is nothing to restart from;
            // refuse rather than silently rejoin with an empty database.
            return Err(codb_store::StoreError::NoState { dir: dir.to_owned() });
        }
        let mut node = CoDbNode::new(
            id,
            &nc.name,
            nc.schema.clone(),
            Vec::new(),
            &self.config.rules,
            self.settings.clone(),
        );
        // The new incarnation keeps recording into the same trace (rejoin
        // steps are exactly what a postmortem wants to see).
        if self.sim.tracer().is_enabled() {
            node.attach_tracer(&self.sim.tracer().clone());
        }
        // A restart rejoins the network's shared fsync scheduler (if the
        // policy batches group-wide), so a recovered node's appends
        // coalesce with its peers' again.
        let sched = self.scheduler_for(policy)?;
        let stats = node
            .open_persistence_with(dir, policy, codec, sched.as_ref())?
            .expect("Store::exists checked above, so open_persistence recovers");
        self.sim.add_peer(id.peer(), node);
        Ok(stats)
    }
}

impl CoDbNode {
    /// Next update sequence number (harness peek).
    pub(crate) fn update_state_seq(&self) -> u64 {
        self.next_update_seq
    }

    /// Next query sequence number (harness peek).
    pub(crate) fn query_seq(&self) -> u64 {
        self.next_query_seq
    }

    /// Replaces the super-peer configuration (harness only).
    pub(crate) fn set_superpeer_config(&mut self, config: NetworkConfig) {
        self.superpeer_config = Some(config);
    }
}
