//! The crash-rejoin handshake.
//!
//! A node restarted from its `codb-store` directory recovers its LDB, its
//! receiver-side dedup caches and its protocol counters — but its
//! *neighbors* still hold per-link incremental sent-caches built against
//! the dead incarnation. Those caches assume the receiver never forgets;
//! a crash is exactly a receiver forgetting (any data that was in flight,
//! or applied but not yet durable under a relaxed
//! [`codb_store::SyncPolicy`], is gone). Left alone, the caches would
//! suppress that data forever and the network could never reconverge.
//!
//! The handshake closes the gap:
//!
//! 1. The recovered node opens with a new incarnation **epoch** (the
//!    store's `codb.epoch` counter, bumped on every open) and, as its
//!    first act on start, posts [`Body::Rejoin`]`{ epoch }` to every
//!    acquaintance.
//! 2. Each neighbor, on a *strictly newer* epoch than it has processed
//!    for that peer, drops every sent-cache entry for links **targeting**
//!    the rejoined node — the next update falls back to one full re-send
//!    on those links (the rejoined node's recovered receive caches
//!    suppress everything it still holds) and incremental deltas resume
//!    from there. It answers [`Body::RejoinAck`] echoing the epoch.
//! 3. The rejoined node counts acks for its *current* epoch only; a
//!    stale ack from an earlier incarnation's handshake is ignored, just
//!    like a stale `Rejoin` (epoch ≤ the highest processed) invalidates
//!    nothing at the neighbor.
//!
//! Duplicate `Rejoin`s are acked idempotently without re-invalidating:
//! clearing on equal epochs would let a delayed duplicate wipe a cache an
//! intervening update had legitimately rebuilt (safe but wasteful); only
//! a genuinely new incarnation invalidates.

use crate::ids::{NodeId, RuleName};
use crate::messages::{Body, Envelope};
use crate::node::CoDbNode;
use codb_net::Context;
use codb_trace::TraceEvent;
use std::collections::BTreeSet;

impl CoDbNode {
    /// Posts this incarnation's `Rejoin` to every acquaintance, once
    /// (no-op unless a store recovery marked the node pending).
    pub(crate) fn announce_rejoin(&mut self, ctx: &mut Context<Envelope>) {
        if !self.pending_rejoin {
            return;
        }
        self.pending_rejoin = false;
        // A fresh incarnation starts a fresh handshake: acks collected by
        // a prior incarnation (a second restart in the same process) must
        // not overstate this round's completion.
        self.rejoin_acks.clear();
        let epoch = self.reliable.epoch();
        self.tracer.emit_with(|| TraceEvent::RejoinAnnounce { peer: self.id.0, epoch });
        for acq in self.book.acquaintances(self.id) {
            self.post(ctx, acq, Body::Rejoin { epoch });
        }
    }

    /// Handles a neighbor's `Rejoin`: invalidates sent-caches toward it
    /// on a strictly newer epoch, and always acks (idempotently) echoing
    /// the announced epoch.
    pub(crate) fn handle_rejoin(&mut self, ctx: &mut Context<Envelope>, from: NodeId, epoch: u64) {
        let known = self.rejoin_epochs.get(&from).copied();
        let fresh_incarnation = known.is_none_or(|k| epoch > k);
        let invalidated = if fresh_incarnation {
            self.rejoin_epochs.insert(from, epoch);
            self.invalidate_sent_caches_toward(from)
        } else {
            0 // duplicate/stale incarnation: ack without invalidating
        };
        self.tracer.emit_with(|| TraceEvent::RejoinRecv {
            peer: self.id.0,
            from: from.0,
            invalidated: invalidated as u64,
        });
        self.post(ctx, from, Body::RejoinAck { epoch });
        if fresh_incarnation {
            // Barrier-release repair (window (a)): the crashed incarnation
            // may have lost applied-but-unsynced records this node's
            // sent-caches assumed it held. Don't wait for the next organic
            // update — re-fire every link targeting the rejoined node over
            // the full LDB right now. The caches toward it were just
            // cleared, so this is one full re-send (the rejoined node's
            // recovered receive caches suppress everything it still has),
            // and it re-primes the incremental caches as a side effect.
            self.send_rejoin_repair(ctx, from);
        }
    }

    /// Re-fires every incoming link targeting `peer` over the full LDB and
    /// ships the non-empty remainders as [`Body::RejoinRepair`].
    fn send_rejoin_repair(&mut self, ctx: &mut Context<Envelope>, peer: NodeId) {
        let toward: Vec<RuleName> = self
            .book
            .incoming
            .iter()
            .filter(|(_, r)| r.target == peer)
            .map(|(name, _)| name.clone())
            .collect();
        for name in toward {
            let glav = self.book.incoming[&name].rule.clone();
            let firings = glav.fire(&self.ldb).expect("schema-validated rule");
            self.post_repair(ctx, &name, peer, firings);
        }
    }

    /// Handles a [`Body::RejoinRepair`] batch arriving on outgoing link
    /// `rule`: the receive path of [`crate::update`]'s data flow minus the
    /// per-update bookkeeping — cross-update template dedup, WAL logging,
    /// apply, then a cascade of further repair toward links reading the
    /// changed relations. The receiver-side caches bound the cascade: a
    /// firing is applied (and forwarded) at most once per link, ever.
    pub(crate) fn handle_rejoin_repair(
        &mut self,
        ctx: &mut Context<Envelope>,
        rule: RuleName,
        firings: Vec<codb_relational::RuleFiring>,
    ) {
        if !self.book.outgoing.contains_key(&rule) {
            return; // stale rule name after a reconfiguration
        }
        let cache = self.recv_cache.entry(rule.clone()).or_default();
        let fresh: Vec<codb_relational::RuleFiring> =
            firings.into_iter().filter(|f| cache.insert(f.clone())).collect();
        if fresh.is_empty() {
            return;
        }
        if self.persist.is_some() {
            self.log_wal(codb_store::WalRecord::Applied {
                rule: rule.clone(),
                firings: fresh.clone(),
            });
        }
        let deltas = codb_relational::apply_firings(&mut self.ldb, &fresh, &mut self.nulls)
            .expect("firings validated against schema");
        let added: u64 = deltas.values().map(|v| v.len() as u64).sum();
        if self.tracer.is_enabled() {
            let r = self.tracer.intern(&rule);
            self.tracer.emit(TraceEvent::UpdateApply { peer: self.id.0, rule: r, tuples: added });
        }
        if deltas.is_empty() {
            return;
        }
        // Cascade: downstream nodes may also be missing data derived from
        // what was just repaired (the crashed node forwarded some of it,
        // but not necessarily all). Semi-naive delta evaluation, exactly
        // like update propagation, but carried by repair messages.
        let changed: BTreeSet<String> = deltas.keys().cloned().collect();
        for name in self.book.incoming_reading(&changed) {
            let link = &self.book.incoming[&name];
            let target = link.target;
            let glav = link.rule.clone();
            let mut out: Vec<codb_relational::RuleFiring> = Vec::new();
            for (rel, tuples) in &deltas {
                if glav.body_relations().contains(rel.as_str()) {
                    out.extend(
                        glav.fire_delta(&self.ldb, rel, tuples).expect("schema-validated rule"),
                    );
                }
            }
            self.post_repair(ctx, &name, target, out);
        }
    }

    /// Filters repair `firings` for link `name` through the incremental
    /// sent-cache (when one is kept) and posts the remainder to `target`.
    fn post_repair(
        &mut self,
        ctx: &mut Context<Envelope>,
        name: &RuleName,
        target: NodeId,
        firings: Vec<codb_relational::RuleFiring>,
    ) {
        let fresh: Vec<codb_relational::RuleFiring> = if self.settings.incremental_updates {
            let cache = self.sent_cache.entry((name.clone(), None)).or_default();
            firings.into_iter().filter(|f| cache.insert(f.clone())).collect()
        } else {
            // Without sender-side caches the receiver's template dedup is
            // the only (and sufficient) suppression.
            firings
        };
        if fresh.is_empty() {
            return;
        }
        self.tracer.emit_with(|| TraceEvent::RuleFire {
            peer: self.id.0,
            link: target.0,
            firings: fresh.len() as u64,
        });
        self.post(ctx, target, Body::RejoinRepair { rule: name.clone(), firings: fresh });
    }

    /// Handles a `RejoinAck`: counts it only when it confirms *this*
    /// incarnation's handshake (an ack echoing a dead incarnation's epoch
    /// is a straggler, not a confirmation).
    pub(crate) fn handle_rejoin_ack(&mut self, from: NodeId, epoch: u64) {
        if epoch == self.reliable.epoch() {
            self.rejoin_acks.insert(from);
        }
        if self.tracer.is_enabled() {
            let pending =
                self.book.acquaintances(self.id).len().saturating_sub(self.rejoin_acks.len())
                    as u64;
            self.tracer.emit(TraceEvent::RejoinAck { peer: self.id.0, from: from.0, pending });
        }
    }

    /// Drops every sent-cache entry (incremental and per-update keyed)
    /// for links whose target is `peer`. Returns how many entries went.
    pub(crate) fn invalidate_sent_caches_toward(&mut self, peer: NodeId) -> usize {
        let toward: BTreeSet<RuleName> = self
            .book
            .incoming
            .iter()
            .filter(|(_, r)| r.target == peer)
            .map(|(name, _)| name.clone())
            .collect();
        let before = self.sent_cache.len();
        self.sent_cache.retain(|(rule, _), _| !toward.contains(rule));
        before - self.sent_cache.len()
    }

    /// Acquaintances that acknowledged this incarnation's `Rejoin`.
    pub fn rejoin_acks(&self) -> &BTreeSet<NodeId> {
        &self.rejoin_acks
    }

    /// True while a store recovery still owes the acquaintances a
    /// `Rejoin` round (cleared when the round is posted on start).
    pub fn rejoin_pending(&self) -> bool {
        self.pending_rejoin
    }
}

#[cfg(test)]
mod tests {
    //! The rejoin-handshake unit matrix, driven against a single node
    //! state machine with a hand-held [`Context`] (no simulator): stale
    //! acks, duplicate `Rejoin`s, crash-during-rejoin (a second
    //! incarnation overtaking an unfinished handshake), and a neighbor
    //! that never saw the old epoch.

    use super::*;
    use crate::config::NetworkConfig;
    use crate::ids::UpdateId;
    use crate::node::NodeSettings;
    use codb_net::{Command, PeerId, SimTime};

    /// hub feeds both spoke1 and spoke2; spoke1 also feeds hub (so the
    /// hub has one *outgoing* link, proving those caches are untouched).
    const TRIANGLE: &str = r#"
        node hub
        node spoke1
        node spoke2
        schema hub: h(int)
        schema spoke1: s1(int)
        schema spoke2: s2(int)
        data hub: h(1). h(2).
        rule to1 @ hub -> spoke1: s1(X) <- h(X).
        rule to2 @ hub -> spoke2: s2(X) <- h(X).
        rule back @ spoke1 -> hub: h(X) <- s1(X).
    "#;

    /// The hub node plus the ids of its two spokes.
    fn hub() -> (CoDbNode, NodeId, NodeId) {
        let config = NetworkConfig::parse(TRIANGLE).unwrap();
        let hub = &config.nodes[0];
        let node = CoDbNode::new(
            hub.id,
            &hub.name,
            hub.schema.clone(),
            hub.data.clone(),
            &config.rules,
            NodeSettings::default(),
        );
        (node, config.nodes[1].id, config.nodes[2].id)
    }

    fn firing(k: i64) -> codb_relational::RuleFiring {
        codb_relational::RuleFiring {
            atoms: vec![(
                "x".to_owned(),
                vec![codb_relational::glav::TField::Const(codb_relational::Value::Int(k))],
            )],
        }
    }

    /// Populates the hub's sent caches: both key shapes toward spoke1,
    /// the incremental shape toward spoke2.
    fn seed_caches(node: &mut CoDbNode, spoke1_epoch_update: UpdateId) {
        for key in [
            ("to1".to_owned(), None),
            ("to1".to_owned(), Some(spoke1_epoch_update)),
            ("to2".to_owned(), None),
        ] {
            node.sent_cache.entry(key).or_default().insert(firing(7));
        }
    }

    /// Drains the sends buffered in `ctx`, as `(destination, body)`.
    fn sends(ctx: &mut Context<Envelope>) -> Vec<(PeerId, Body)> {
        ctx.take_commands()
            .into_iter()
            .filter_map(|c| match c {
                Command::Send { to, msg } => Some((to, msg.body)),
                _ => None,
            })
            .collect()
    }

    fn ctx_ads() -> Vec<codb_net::Advertisement> {
        Vec::new()
    }

    #[test]
    fn rejoin_invalidates_only_links_toward_the_rejoined_peer() {
        let (mut node, spoke1, spoke2) = hub();
        let u = UpdateId { origin: spoke1, epoch: 0, seq: 0 };
        seed_caches(&mut node, u);
        let ads = ctx_ads();
        let mut ctx = Context::new(node.id.peer(), SimTime::ZERO, &ads);

        node.handle_rejoin(&mut ctx, spoke1, 1);
        // Both key shapes toward spoke1 were invalidated: the per-update
        // key is gone, and the incremental key — re-primed by the repair
        // push — no longer holds the stale firing. spoke2's cache stays.
        assert!(!node.sent_cache.contains_key(&("to1".to_owned(), Some(u))));
        assert!(!node.sent_cache[&("to1".to_owned(), None)].contains(&firing(7)));
        assert!(node.sent_cache[&("to2".to_owned(), None)].contains(&firing(7)));
        // The handshake is acked (echoing the announced epoch), and the
        // link's full data is re-pushed immediately as repair — the
        // rejoined node must not wait for the next organic update.
        let out = sends(&mut ctx);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], (p, Body::RejoinAck { epoch: 1 }) if p == spoke1.peer()));
        match &out[1] {
            (p, Body::RejoinRepair { rule, firings }) => {
                assert_eq!(*p, spoke1.peer());
                assert_eq!(rule, "to1");
                assert_eq!(firings.len(), 2, "h(1) and h(2) both re-fired");
            }
            other => panic!("expected RejoinRepair, got {other:?}"),
        }
        let _ = spoke2;
    }

    #[test]
    fn duplicate_rejoin_is_acked_but_invalidates_nothing() {
        let (mut node, spoke1, _) = hub();
        let ads = ctx_ads();
        let mut ctx = Context::new(node.id.peer(), SimTime::ZERO, &ads);
        node.handle_rejoin(&mut ctx, spoke1, 1);
        // An update ran meanwhile and legitimately rebuilt the cache.
        node.sent_cache.entry(("to1".to_owned(), None)).or_default().insert(firing(1));

        // The duplicate (same epoch, e.g. a delayed copy) must not wipe
        // the rebuilt cache — but it is still acked, idempotently.
        node.handle_rejoin(&mut ctx, spoke1, 1);
        assert!(node.sent_cache.contains_key(&("to1".to_owned(), None)));
        let acks: Vec<_> = sends(&mut ctx)
            .into_iter()
            .filter(|(_, b)| matches!(b, Body::RejoinAck { .. }))
            .collect();
        assert_eq!(acks.len(), 2, "every Rejoin gets an ack");
    }

    #[test]
    fn stale_rejoin_from_dead_incarnation_invalidates_nothing() {
        let (mut node, spoke1, _) = hub();
        let ads = ctx_ads();
        let mut ctx = Context::new(node.id.peer(), SimTime::ZERO, &ads);
        node.handle_rejoin(&mut ctx, spoke1, 3);
        node.sent_cache.entry(("to1".to_owned(), None)).or_default().insert(firing(1));

        // A straggler from incarnation 2 (delayed in the network while
        // incarnation 3 completed its handshake) is stale: no wipe, and
        // its ack echoes the stale epoch so the live incarnation ignores
        // it (see `stale_ack_from_old_epoch_is_ignored`).
        node.handle_rejoin(&mut ctx, spoke1, 2);
        assert!(node.sent_cache.contains_key(&("to1".to_owned(), None)));
        assert_eq!(node.rejoin_epochs[&spoke1], 3, "the newest epoch stays on record");
        let last = sends(&mut ctx).pop().unwrap();
        assert!(matches!(last.1, Body::RejoinAck { epoch: 2 }));
    }

    #[test]
    fn stale_ack_from_old_epoch_is_ignored() {
        let (mut node, spoke1, spoke2) = hub();
        // This node itself recovered: incarnation 2.
        node.reliable.set_epoch(2);
        node.handle_rejoin_ack(spoke1, 1); // ack of the dead handshake
        assert!(node.rejoin_acks().is_empty(), "stale ack must not count");
        node.handle_rejoin_ack(spoke1, 2);
        node.handle_rejoin_ack(spoke2, 2);
        assert_eq!(node.rejoin_acks().len(), 2);
    }

    #[test]
    fn crash_during_rejoin_second_incarnation_overtakes() {
        // spoke1 rejoins as incarnation 1, crashes again before the
        // handshake settles, and comes back as incarnation 2: the newer
        // Rejoin must invalidate again (the cache may have been rebuilt
        // by traffic between the two announcements).
        let (mut node, spoke1, _) = hub();
        let ads = ctx_ads();
        let mut ctx = Context::new(node.id.peer(), SimTime::ZERO, &ads);
        node.handle_rejoin(&mut ctx, spoke1, 1);
        node.sent_cache.entry(("to1".to_owned(), None)).or_default().insert(firing(1));

        node.handle_rejoin(&mut ctx, spoke1, 2);
        assert!(
            !node.sent_cache[&("to1".to_owned(), None)].contains(&firing(1)),
            "a genuinely newer incarnation invalidates again (the repair push \
             re-primes the cache with the link's real firings only)"
        );
        assert_eq!(node.rejoin_epochs[&spoke1], 2);
    }

    #[test]
    fn neighbor_that_never_saw_the_old_epoch_just_acks_and_records() {
        // A node with no history for the rejoined peer (it joined after
        // the peer's previous life, or never exchanged data): nothing to
        // invalidate, but the epoch is recorded and the ack still flows.
        let (mut node, spoke1, _) = hub();
        assert!(node.sent_cache.is_empty());
        let ads = ctx_ads();
        let mut ctx = Context::new(node.id.peer(), SimTime::ZERO, &ads);
        node.handle_rejoin(&mut ctx, spoke1, 5);
        assert_eq!(node.rejoin_epochs[&spoke1], 5);
        let out = sends(&mut ctx);
        assert!(matches!(out[0].1, Body::RejoinAck { epoch: 5 }));
    }

    #[test]
    fn announce_posts_once_to_every_acquaintance() {
        let (mut node, spoke1, spoke2) = hub();
        node.reliable.set_epoch(4);
        node.pending_rejoin = true;
        let ads = ctx_ads();
        let mut ctx = Context::new(node.id.peer(), SimTime::ZERO, &ads);
        node.announce_rejoin(&mut ctx);
        let mut dests: Vec<PeerId> = sends(&mut ctx)
            .into_iter()
            .filter(|(_, b)| matches!(b, Body::Rejoin { epoch: 4 }))
            .map(|(to, _)| to)
            .collect();
        dests.sort();
        assert_eq!(dests, vec![spoke1.peer(), spoke2.peer()]);
        // The announcement is one-shot.
        node.announce_rejoin(&mut ctx);
        assert!(sends(&mut ctx).is_empty());
        assert!(!node.rejoin_pending());
    }

    #[test]
    fn announce_clears_acks_from_a_prior_incarnation() {
        // Second restart in the same process: the ack set built by the
        // previous incarnation's handshake must not carry over, or the
        // new round would overstate its completion.
        let (mut node, spoke1, _) = hub();
        node.reliable.set_epoch(4);
        node.rejoin_acks.insert(spoke1);
        node.pending_rejoin = true;
        let ads = ctx_ads();
        let mut ctx = Context::new(node.id.peer(), SimTime::ZERO, &ads);
        node.announce_rejoin(&mut ctx);
        assert!(node.rejoin_acks().is_empty(), "stale acks cleared with the new round");
        node.handle_rejoin_ack(spoke1, 4);
        assert_eq!(node.rejoin_acks().len(), 1);
    }

    /// A repair firing writing `h(k)` — what a neighbor re-fires on the
    /// hub's outgoing link `back` (`h(X) <- s1(X)`).
    fn h_firing(k: i64) -> codb_relational::RuleFiring {
        codb_relational::RuleFiring {
            atoms: vec![(
                "h".to_owned(),
                vec![codb_relational::glav::TField::Const(codb_relational::Value::Int(k))],
            )],
        }
    }

    #[test]
    fn repair_applies_dedups_and_cascades() {
        let (mut node, spoke1, spoke2) = hub();
        let ads = ctx_ads();
        let mut ctx = Context::new(node.id.peer(), SimTime::ZERO, &ads);
        let before = node.ldb().tuple_count();

        // h(5) arrives as repair on the hub's outgoing link `back`.
        node.handle_rejoin_repair(&mut ctx, "back".to_owned(), vec![h_firing(5)]);
        assert_eq!(node.ldb().tuple_count(), before + 1, "h(5) applied");
        // The change cascades: both links reading `h` re-fire their delta
        // toward their targets, as further repair.
        let out = sends(&mut ctx);
        let repairs: Vec<_> = out
            .iter()
            .filter_map(|(to, b)| match b {
                Body::RejoinRepair { rule, firings } => Some((*to, rule.clone(), firings.len())),
                _ => None,
            })
            .collect();
        assert_eq!(
            repairs,
            vec![(spoke1.peer(), "to1".to_owned(), 1), (spoke2.peer(), "to2".to_owned(), 1),]
        );

        // A duplicate repair batch is fully suppressed by the receive
        // cache: nothing applied, nothing cascaded — the termination
        // argument for repair chains in cyclic topologies.
        node.handle_rejoin_repair(&mut ctx, "back".to_owned(), vec![h_firing(5)]);
        assert_eq!(node.ldb().tuple_count(), before + 1);
        assert!(sends(&mut ctx).is_empty());

        // A stale rule name (reconfiguration race) is ignored outright.
        node.handle_rejoin_repair(&mut ctx, "no-such-link".to_owned(), vec![h_firing(6)]);
        assert_eq!(node.ldb().tuple_count(), before + 1);
    }
}
