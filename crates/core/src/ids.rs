//! Identifiers used across the coDB protocols.

use codb_net::PeerId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A coDB node identifier. Nodes sit 1:1 on network peers.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The network peer carrying this node.
    pub fn peer(self) -> PeerId {
        PeerId(self.0)
    }
}

impl From<PeerId> for NodeId {
    fn from(p: PeerId) -> Self {
        NodeId(p.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of one global update: the initiating node plus a per-node
/// sequence number. The paper generates these with JXTA ("all global update
/// request messages carry the same unique identifier generated at the node
/// which started the global update").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UpdateId {
    /// Node that started the update.
    pub origin: NodeId,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "upd[{}#{}]", self.origin, self.seq)
    }
}

/// Identifier of one user query execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId {
    /// Node the user queried.
    pub origin: NodeId,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qry[{}#{}]", self.origin, self.seq)
    }
}

/// Identifier of one query-time fetch request (a node asking an
/// acquaintance to execute one coordination rule on behalf of a query).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReqId {
    /// The requesting node.
    pub node: NodeId,
    /// Per-node sequence number.
    pub seq: u64,
}

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req[{}#{}]", self.node, self.seq)
    }
}

/// Coordination rules are addressed by their (configuration-unique) name.
pub type RuleName = String;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_peer_round_trip() {
        let n = NodeId(7);
        assert_eq!(n.peer(), PeerId(7));
        assert_eq!(NodeId::from(PeerId(7)), n);
    }

    #[test]
    fn displays() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(UpdateId { origin: NodeId(1), seq: 2 }.to_string(), "upd[n1#2]");
        assert_eq!(QueryId { origin: NodeId(1), seq: 2 }.to_string(), "qry[n1#2]");
        assert_eq!(ReqId { node: NodeId(1), seq: 2 }.to_string(), "req[n1#2]");
    }

    #[test]
    fn update_ids_order_by_origin_then_seq() {
        let a = UpdateId { origin: NodeId(1), seq: 9 };
        let b = UpdateId { origin: NodeId(2), seq: 0 };
        assert!(a < b);
    }
}
