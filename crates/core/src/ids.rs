//! Identifiers used across the coDB protocols.
//!
//! Update, query and fetch identifiers are **(origin, epoch, seq)**-keyed:
//! `origin` is the minting node, `epoch` the node's *incarnation* (bumped
//! every time the node is restarted from its durable store — see
//! `codb-store`'s `codb.epoch` counter), and `seq` a per-origin sequence
//! number. The epoch makes identifiers collision-free across crashes by
//! construction: even if a node lost its persisted counters and restarted
//! `seq` at zero, its new incarnation's ids differ from every id the dead
//! incarnation minted. (In practice the counters *are* persisted — the
//! epoch is the belt to that suspender.)

use codb_net::PeerId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A coDB node identifier. Nodes sit 1:1 on network peers.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The network peer carrying this node.
    pub fn peer(self) -> PeerId {
        PeerId(self.0)
    }
}

impl From<PeerId> for NodeId {
    fn from(p: PeerId) -> Self {
        NodeId(p.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of one global update: the initiating node, its incarnation
/// epoch, and a per-node sequence number. The paper generates these with
/// JXTA ("all global update request messages carry the same unique
/// identifier generated at the node which started the global update");
/// the epoch component keeps ids unique across node restarts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UpdateId {
    /// Node that started the update.
    pub origin: NodeId,
    /// Incarnation of the origin when the update started.
    pub epoch: u64,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "upd[{}@{}#{}]", self.origin, self.epoch, self.seq)
    }
}

/// Identifier of one user query execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId {
    /// Node the user queried.
    pub origin: NodeId,
    /// Incarnation of the origin when the query started.
    pub epoch: u64,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qry[{}@{}#{}]", self.origin, self.epoch, self.seq)
    }
}

/// Identifier of one query-time fetch request (a node asking an
/// acquaintance to execute one coordination rule on behalf of a query).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReqId {
    /// The requesting node.
    pub node: NodeId,
    /// Incarnation of the requester when the fetch was issued.
    pub epoch: u64,
    /// Per-node sequence number.
    pub seq: u64,
}

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req[{}@{}#{}]", self.node, self.epoch, self.seq)
    }
}

/// Coordination rules are addressed by their (configuration-unique) name.
pub type RuleName = String;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_peer_round_trip() {
        let n = NodeId(7);
        assert_eq!(n.peer(), PeerId(7));
        assert_eq!(NodeId::from(PeerId(7)), n);
    }

    #[test]
    fn displays() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(UpdateId { origin: NodeId(1), epoch: 0, seq: 2 }.to_string(), "upd[n1@0#2]");
        assert_eq!(QueryId { origin: NodeId(1), epoch: 3, seq: 2 }.to_string(), "qry[n1@3#2]");
        assert_eq!(ReqId { node: NodeId(1), epoch: 0, seq: 2 }.to_string(), "req[n1@0#2]");
    }

    #[test]
    fn update_ids_order_by_origin_then_epoch_then_seq() {
        let a = UpdateId { origin: NodeId(1), epoch: 0, seq: 9 };
        let b = UpdateId { origin: NodeId(2), epoch: 0, seq: 0 };
        assert!(a < b);
        let old = UpdateId { origin: NodeId(1), epoch: 0, seq: 9 };
        let new = UpdateId { origin: NodeId(1), epoch: 1, seq: 0 };
        assert!(old < new, "a new incarnation's ids outrank the dead one's");
    }

    #[test]
    fn restarted_seq_zero_cannot_collide_across_epochs() {
        // The crash-rejoin guarantee at the id level: identical origin and
        // seq are still distinct ids when the epoch differs.
        let dead = UpdateId { origin: NodeId(4), epoch: 0, seq: 0 };
        let rejoined = UpdateId { origin: NodeId(4), epoch: 1, seq: 0 };
        assert_ne!(dead, rejoined);
    }
}
