//! Tuples: fixed-arity sequences of [`Value`]s.

use crate::value::{NullId, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A database tuple. Immutable once constructed; cheap to hash and compare,
/// which matters because coDB's duplicate suppression (`T' = T \ R`) hashes
/// every incoming tuple against the local relation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(values.into().into_boxed_slice())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field accessor; `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Iterates over the fields.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// True iff any field is a marked null. Used to compute *certain*
    /// answers: a query answer containing an invented null is not certain.
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }

    /// All null labels occurring in the tuple, in field order.
    pub fn nulls(&self) -> impl Iterator<Item = NullId> + '_ {
        self.0.iter().filter_map(|v| match v {
            Value::Null(n) => Some(*n),
            _ => None,
        })
    }

    /// Approximate wire size in bytes (see [`Value::size_bytes`]).
    pub fn size_bytes(&self) -> usize {
        2 + self.0.iter().map(Value::size_bytes).sum::<usize>()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Builds a [`Tuple`] from a list of expressions convertible to [`Value`].
///
/// ```
/// use codb_relational::tup;
/// let t = tup![1, "alice", true];
/// assert_eq!(t.arity(), 3);
/// ```
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NullFactory;

    #[test]
    fn construction_and_access() {
        let t = tup![1, "a", false];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.get(2), Some(&Value::Bool(false)));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn null_detection() {
        let mut f = NullFactory::new(1);
        let n = f.fresh();
        let t = Tuple::new(vec![Value::Int(1), Value::Null(n)]);
        assert!(t.has_null());
        assert_eq!(t.nulls().collect::<Vec<_>>(), vec![n]);
        assert!(!tup![1, 2].has_null());
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(tup![1, "x"]);
        assert!(s.contains(&tup![1, "x"]));
        assert!(!s.contains(&tup![1, "y"]));
    }

    #[test]
    fn display_format() {
        assert_eq!(tup![1, "a"].to_string(), "(1, \"a\")");
        assert_eq!(Tuple::new(vec![]).to_string(), "()");
    }

    #[test]
    fn size_accounts_all_fields() {
        assert_eq!(tup![1, true].size_bytes(), 2 + 8 + 1);
    }
}
