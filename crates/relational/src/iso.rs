//! Equivalence of instances *modulo marked-null renaming*.
//!
//! Two coDB runs invent different null labels for the same existential
//! facts (labels embed node ids and sequence numbers), so instance
//! comparison in data-exchange semantics is **null isomorphism**: a
//! bijection between null sets under which the instances coincide.
//! [`homomorphic`] checks the one-directional variant (nulls may also map
//! to constants), which characterises "at least as informative as".
//!
//! The search is backtracking over tuples, grouped per relation, with
//! ground tuples matched first; fine for test- and report-sized instances
//! (it is the standard chase-equivalence check, NP-hard in general).

use crate::instance::Instance;
use crate::tuple::Tuple;
use crate::value::{NullId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A (partial) mapping of null labels.
type NullMap = BTreeMap<NullId, Value>;

/// Tries to extend `map` so that `a` maps onto `b` field-by-field.
/// On success returns the labels newly bound (for backtracking).
fn match_tuple(
    a: &Tuple,
    b: &Tuple,
    map: &mut NullMap,
    bijective: bool,
    used_targets: &mut BTreeSet<Value>,
) -> Option<Vec<NullId>> {
    if a.arity() != b.arity() {
        return None;
    }
    let mut bound = Vec::new();
    for (va, vb) in a.values().zip(b.values()) {
        let ok = match va {
            Value::Null(label) => match map.get(label) {
                Some(mapped) => mapped == vb,
                None => {
                    let blocked =
                        bijective && (!matches!(vb, Value::Null(_)) || used_targets.contains(vb));
                    if blocked {
                        false
                    } else {
                        map.insert(*label, vb.clone());
                        if bijective {
                            used_targets.insert(vb.clone());
                        }
                        bound.push(*label);
                        true
                    }
                }
            },
            ground => ground == vb,
        };
        if !ok {
            for label in &bound {
                if bijective {
                    if let Some(v) = map.get(label) {
                        used_targets.remove(v);
                    }
                }
                map.remove(label);
            }
            return None;
        }
    }
    Some(bound)
}

/// Backtracking search: match every tuple of `from[rel]` onto a tuple of
/// `to[rel]` — onto a *distinct* one in bijective mode (isomorphism),
/// allowing collapses otherwise (homomorphism).
fn embed_relation(
    from: &[&Tuple],
    to: &[&Tuple],
    used: &mut Vec<bool>,
    map: &mut NullMap,
    bijective: bool,
    used_targets: &mut BTreeSet<Value>,
) -> bool {
    let Some((first, rest)) = from.split_first() else { return true };
    for (i, candidate) in to.iter().enumerate() {
        if bijective && used[i] {
            continue;
        }
        if let Some(bound) = match_tuple(first, candidate, map, bijective, used_targets) {
            used[i] = true;
            if embed_relation(rest, to, used, map, bijective, used_targets) {
                return true;
            }
            used[i] = false;
            for label in bound {
                if bijective {
                    if let Some(v) = map.get(&label) {
                        used_targets.remove(v);
                    }
                }
                map.remove(&label);
            }
        }
    }
    false
}

fn embed(a: &Instance, b: &Instance, bijective: bool) -> bool {
    let mut map = NullMap::new();
    let mut used_targets = BTreeSet::new();
    for rel_a in a.relations() {
        let Some(rel_b) = b.get(rel_a.name()) else {
            if rel_a.is_empty() {
                continue;
            }
            return false;
        };
        if bijective && rel_a.len() != rel_b.len() {
            return false;
        }
        // Deterministic order; ground tuples first so they prune early.
        let mut from: Vec<&Tuple> = rel_a.iter().collect();
        from.sort_by_key(|t| (t.has_null(), (*t).clone()));
        let to: Vec<&Tuple> = rel_b.sorted_refs();
        let mut used = vec![false; to.len()];
        if !embed_relation(&from, &to, &mut used, &mut map, bijective, &mut used_targets) {
            return false;
        }
    }
    true
}

/// True iff there is an **injective tuple embedding** of `a` into `b` under
/// a null mapping (nulls of `a` may map to nulls *or constants* of `b`):
/// `b` contains at least the information of `a`.
pub fn homomorphic(a: &Instance, b: &Instance) -> bool {
    embed(a, b, false)
}

/// True iff the instances are identical up to a **bijective renaming of
/// null labels** — the right notion of "same result" for comparing coDB
/// runs whose invented labels differ.
pub fn isomorphic(a: &Instance, b: &Instance) -> bool {
    // Cardinalities must agree per relation, and the bijection must hold in
    // one direction with null→null injective mapping; together with equal
    // cardinalities this is an isomorphism.
    embed(a, b, true)
}

impl crate::relation::Relation {
    /// Tuples in sorted order, by reference (helper for the iso search).
    pub(crate) fn sorted_refs(&self) -> Vec<&Tuple> {
        let mut v: Vec<&Tuple> = self.iter().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::{NullFactory, ValueType};

    fn inst_with(tuples: Vec<Tuple>) -> Instance {
        let mut i = Instance::new();
        i.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Int]));
        for t in tuples {
            i.get_mut("r").unwrap().insert(t).unwrap();
        }
        i
    }

    fn null(origin: u64, seq: u64) -> Value {
        Value::Null(crate::value::NullId::new(origin, seq))
    }

    #[test]
    fn ground_instances_compare_exactly() {
        let a = inst_with(vec![tup![1, 2], tup![3, 4]]);
        let b = inst_with(vec![tup![3, 4], tup![1, 2]]);
        assert!(isomorphic(&a, &b));
        assert!(homomorphic(&a, &b));
        let c = inst_with(vec![tup![1, 2]]);
        assert!(!isomorphic(&a, &c));
        assert!(homomorphic(&c, &a));
        assert!(!homomorphic(&a, &c));
    }

    #[test]
    fn iso_modulo_null_renaming() {
        let a = inst_with(vec![
            Tuple::new(vec![Value::Int(1), null(1, 0)]),
            Tuple::new(vec![Value::Int(2), null(1, 1)]),
        ]);
        let b = inst_with(vec![
            Tuple::new(vec![Value::Int(1), null(9, 7)]),
            Tuple::new(vec![Value::Int(2), null(9, 8)]),
        ]);
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn iso_respects_null_sharing() {
        // a: both rows share one null; b: two distinct nulls — NOT iso.
        let a = inst_with(vec![
            Tuple::new(vec![Value::Int(1), null(1, 0)]),
            Tuple::new(vec![Value::Int(2), null(1, 0)]),
        ]);
        let b = inst_with(vec![
            Tuple::new(vec![Value::Int(1), null(2, 0)]),
            Tuple::new(vec![Value::Int(2), null(2, 1)]),
        ]);
        assert!(!isomorphic(&a, &b));
        assert!(!isomorphic(&b, &a));
        // But b is homomorphic into a (both nulls map to the shared one)…
        assert!(homomorphic(&b, &a));
    }

    #[test]
    fn homomorphism_allows_null_to_constant() {
        let a = inst_with(vec![Tuple::new(vec![Value::Int(1), null(1, 0)])]);
        let b = inst_with(vec![tup![1, 42]]);
        assert!(homomorphic(&a, &b), "null maps to 42");
        assert!(!isomorphic(&a, &b), "bijective renaming cannot ground a null");
        assert!(!homomorphic(&b, &a), "42 cannot map to a null");
    }

    #[test]
    fn injectivity_blocks_null_merging_in_iso() {
        // a has two distinct nulls on separate rows; b shares one null.
        let a = inst_with(vec![
            Tuple::new(vec![Value::Int(1), null(1, 0)]),
            Tuple::new(vec![Value::Int(1), null(1, 1)]),
        ]);
        let b = inst_with(vec![Tuple::new(vec![Value::Int(1), null(2, 0)])]);
        assert!(!isomorphic(&a, &b)); // cardinality differs
        assert!(homomorphic(&a, &b)); // both nulls may merge under hom
    }

    #[test]
    fn missing_relation_matters_only_when_nonempty() {
        let a = inst_with(vec![tup![1, 1]]);
        let empty = Instance::new();
        assert!(!homomorphic(&a, &empty));
        let a_empty = inst_with(vec![]);
        assert!(homomorphic(&a_empty, &empty));
    }

    #[test]
    fn backtracking_finds_non_greedy_matching() {
        // Greedy first-fit would map a's (n0, n1) to b's (m0, m0) and fail;
        // the correct matching needs backtracking.
        let mut f = NullFactory::new(5);
        let n0 = Value::Null(f.fresh());
        let n1 = Value::Null(f.fresh());
        let mut g = NullFactory::new(6);
        let m0 = Value::Null(g.fresh());
        let m1 = Value::Null(g.fresh());
        let a = inst_with(vec![
            Tuple::new(vec![Value::Int(1), n0.clone()]),
            Tuple::new(vec![Value::Int(1), n1.clone()]),
            Tuple::new(vec![Value::Int(2), n1.clone()]),
        ]);
        let b = inst_with(vec![
            Tuple::new(vec![Value::Int(1), m0.clone()]),
            Tuple::new(vec![Value::Int(1), m1.clone()]),
            Tuple::new(vec![Value::Int(2), m0.clone()]),
        ]);
        // n1 must map to m0 (the null occurring with both 1 and 2).
        assert!(isomorphic(&a, &b));
    }
}
