//! Database instances: the Local Database (LDB) of a coDB node.

use crate::relation::Relation;
use crate::schema::{DatabaseSchema, RelationSchema, SchemaError};
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A database instance over a [`DatabaseSchema`]: one [`Relation`] per
/// declared relation schema.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    relations: BTreeMap<String, Relation>,
}

impl Instance {
    /// Empty instance with no relations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty instance with one empty relation per schema entry.
    pub fn with_schema(schema: &DatabaseSchema) -> Self {
        let mut inst = Instance::new();
        for rs in schema.relations() {
            inst.add_relation(rs.clone());
        }
        inst
    }

    /// Declares a relation (empty) — replaces any same-named relation.
    pub fn add_relation(&mut self, schema: RelationSchema) -> &mut Self {
        self.relations.insert(schema.name.clone(), Relation::new(schema));
        self
    }

    /// Inserts a populated relation (replaces any same-named relation).
    /// Used to assemble per-query overlay instances from clones of the
    /// relations a query actually reads.
    pub fn insert_relation(&mut self, relation: Relation) -> &mut Self {
        self.relations.insert(relation.name().to_owned(), relation);
        self
    }

    /// The database schema induced by the declared relations.
    pub fn schema(&self) -> DatabaseSchema {
        let mut s = DatabaseSchema::new();
        for r in self.relations.values() {
            s.add(r.schema().clone());
        }
        s
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Inserts one tuple into `relation`.
    pub fn insert(&mut self, relation: &str, t: Tuple) -> Result<bool, SchemaError> {
        self.relations
            .get_mut(relation)
            .ok_or_else(|| SchemaError::UnknownRelation { relation: relation.to_owned() })?
            .insert(t)
    }

    /// Batch insert; returns the delta (tuples actually new). This is the
    /// node-level `T' = T \ R` step of the coDB global update algorithm.
    pub fn insert_all(
        &mut self,
        relation: &str,
        batch: impl IntoIterator<Item = Tuple>,
    ) -> Result<Vec<Tuple>, SchemaError> {
        self.relations
            .get_mut(relation)
            .ok_or_else(|| SchemaError::UnknownRelation { relation: relation.to_owned() })?
            .insert_all(batch)
    }

    /// Iterates over relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Number of declared relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Approximate byte volume across all relations.
    pub fn size_bytes(&self) -> usize {
        self.relations.values().map(Relation::size_bytes).sum()
    }

    /// True iff `other` contains every tuple of `self` (schema-compatible
    /// relations assumed). Used by soundness/completeness tests.
    pub fn subset_of(&self, other: &Instance) -> bool {
        self.relations.iter().all(|(name, rel)| {
            rel.is_empty() || other.get(name).is_some_and(|o| rel.iter().all(|t| o.contains(t)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::ValueType;

    fn inst() -> Instance {
        let mut i = Instance::new();
        i.add_relation(RelationSchema::with_types("r", &[ValueType::Int]));
        i.add_relation(RelationSchema::with_types("s", &[ValueType::Int, ValueType::Int]));
        i
    }

    #[test]
    fn insert_routes_to_relation() {
        let mut i = inst();
        assert!(i.insert("r", tup![1]).unwrap());
        assert!(!i.insert("r", tup![1]).unwrap());
        assert_eq!(i.get("r").unwrap().len(), 1);
        assert!(i.get("s").unwrap().is_empty());
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let mut i = inst();
        assert!(i.insert("t", tup![1]).is_err());
        assert!(i.insert_all("t", vec![tup![1]]).is_err());
    }

    #[test]
    fn batch_insert_returns_delta() {
        let mut i = inst();
        i.insert("r", tup![1]).unwrap();
        let d = i.insert_all("r", vec![tup![1], tup![2]]).unwrap();
        assert_eq!(d, vec![tup![2]]);
    }

    #[test]
    fn with_schema_declares_all_relations() {
        let schema = inst().schema();
        let fresh = Instance::with_schema(&schema);
        assert_eq!(fresh.relation_count(), 2);
        assert_eq!(fresh.tuple_count(), 0);
        assert_eq!(fresh.schema(), schema);
    }

    #[test]
    fn counts_and_sizes() {
        let mut i = inst();
        i.insert("r", tup![1]).unwrap();
        i.insert("s", tup![1, 2]).unwrap();
        assert_eq!(i.tuple_count(), 2);
        assert_eq!(i.size_bytes(), tup![1].size_bytes() + tup![1, 2].size_bytes());
    }

    #[test]
    fn subset_of_detects_containment() {
        let mut a = inst();
        let mut b = inst();
        a.insert("r", tup![1]).unwrap();
        b.insert("r", tup![1]).unwrap();
        b.insert("s", tup![1, 2]).unwrap();
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
    }

    #[test]
    fn subset_of_missing_relation_fails_only_when_nonempty() {
        let mut a = Instance::new();
        a.add_relation(RelationSchema::with_types("only_a", &[ValueType::Int]));
        let b = Instance::new();
        assert!(a.subset_of(&b)); // empty relation: vacuous
        a.insert("only_a", tup![1]).unwrap();
        assert!(!a.subset_of(&b));
    }
}
