//! Text syntax for queries, coordination rules and facts.
//!
//! The coDB super-peer "can read coordination rules for all peers from a
//! file and broadcast this file to all peers"; this module defines that file
//! syntax (the node-level `source -> target` wiring is added by
//! `codb-core`'s network configuration parser on top of the rule syntax
//! here).
//!
//! Grammar (comments `% ...` to end of line; statements end with `.`):
//!
//! ```text
//! fact   := ident "(" const ("," const)* ")"
//! query  := atom ":-" body
//! rule   := "rule" ident ":" atom ("," atom)* "<-" body
//! body   := (atom | cmp) ("," (atom | cmp))*
//! atom   := ident "(" term ("," term)* ")"
//! cmp    := term op term          op ∈ { =, !=, <, <=, >, >= }
//! term   := VARIABLE | const     (variables start uppercase or '_')
//! const  := integer | string | "true" | "false"
//! ```
//!
//! A bare `_` is an anonymous variable: each occurrence is distinct.

use crate::cq::{Atom, CmpOp, Comparison, ConjunctiveQuery, CqBody, CqError, Term, VarPool};
use crate::glav::GlavRule;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// Parse error with 1-based line/column position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<CqError> for ParseError {
    fn from(e: CqError) -> Self {
        ParseError { message: e.to_string(), line: 0, col: 0 }
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Variable(String),
    Int(i64),
    Str(String),
    Bool(bool),
    LParen,
    RParen,
    Comma,
    Dot,
    Colon,
    Turnstile, // :-
    LeftArrow, // <-
    Op(CmpOp),
    KwRule,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, chars: src.char_indices().peekable(), line: 1, col: 1 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), line: self.line, col: self.col }
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, c)) = next {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        next
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            loop {
                match self.chars.peek() {
                    Some((_, c)) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some((_, '%')) => {
                        while let Some((_, c)) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(&(start, c)) = self.chars.peek() else { break };
            let tok = match c {
                '(' => {
                    self.bump();
                    Tok::LParen
                }
                ')' => {
                    self.bump();
                    Tok::RParen
                }
                ',' => {
                    self.bump();
                    Tok::Comma
                }
                '.' => {
                    self.bump();
                    Tok::Dot
                }
                ':' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some((_, '-'))) {
                        self.bump();
                        Tok::Turnstile
                    } else {
                        Tok::Colon
                    }
                }
                '<' => {
                    self.bump();
                    match self.chars.peek() {
                        Some((_, '-')) => {
                            self.bump();
                            Tok::LeftArrow
                        }
                        Some((_, '=')) => {
                            self.bump();
                            Tok::Op(CmpOp::Le)
                        }
                        _ => Tok::Op(CmpOp::Lt),
                    }
                }
                '>' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some((_, '='))) {
                        self.bump();
                        Tok::Op(CmpOp::Ge)
                    } else {
                        Tok::Op(CmpOp::Gt)
                    }
                }
                '=' => {
                    self.bump();
                    Tok::Op(CmpOp::Eq)
                }
                '!' => {
                    self.bump();
                    if matches!(self.chars.peek(), Some((_, '='))) {
                        self.bump();
                        Tok::Op(CmpOp::Ne)
                    } else {
                        return Err(self.err("expected '=' after '!'"));
                    }
                }
                '"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some((_, '"')) => break,
                            Some((_, '\\')) => match self.bump() {
                                Some((_, 'n')) => s.push('\n'),
                                Some((_, 't')) => s.push('\t'),
                                Some((_, other)) => s.push(other),
                                None => return Err(self.err("unterminated string")),
                            },
                            Some((_, ch)) => s.push(ch),
                            None => return Err(self.err("unterminated string")),
                        }
                    }
                    Tok::Str(s)
                }
                c if c.is_ascii_digit() || c == '-' => {
                    self.bump();
                    let mut end = start + c.len_utf8();
                    while let Some(&(i, d)) = self.chars.peek() {
                        if d.is_ascii_digit() {
                            self.bump();
                            end = i + d.len_utf8();
                        } else {
                            break;
                        }
                    }
                    let text = &self.src[start..end];
                    let n: i64 = text
                        .parse()
                        .map_err(|_| self.err(format!("bad integer literal {text:?}")))?;
                    Tok::Int(n)
                }
                c if c.is_alphanumeric() || c == '_' => {
                    self.bump();
                    let mut end = start + c.len_utf8();
                    while let Some(&(i, d)) = self.chars.peek() {
                        if d.is_alphanumeric() || d == '_' {
                            self.bump();
                            end = i + d.len_utf8();
                        } else {
                            break;
                        }
                    }
                    let text = &self.src[start..end];
                    match text {
                        "true" => Tok::Bool(true),
                        "false" => Tok::Bool(false),
                        "rule" => Tok::KwRule,
                        _ if text.starts_with(|ch: char| ch.is_uppercase())
                            || text.starts_with('_') =>
                        {
                            Tok::Variable(text.to_owned())
                        }
                        _ => Tok::Ident(text.to_owned()),
                    }
                }
                other => return Err(self.err(format!("unexpected character {other:?}"))),
            };
            out.push(Spanned { tok, line, col });
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    vars: VarPool,
    anon: u32,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser { toks: Lexer::new(src).tokenize()?, pos: 0, vars: VarPool::new(), anon: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or((0, 0), |s| (s.line, s.col))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError { message: message.into(), line, col }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Tok::Variable(name)) => {
                if name == "_" {
                    // Each bare underscore is a distinct anonymous variable.
                    self.anon += 1;
                    Ok(Term::Var(self.vars.var(&format!("_anon{}", self.anon))))
                } else {
                    Ok(Term::Var(self.vars.var(&name)))
                }
            }
            Some(Tok::Int(n)) => Ok(Term::Const(Value::Int(n))),
            Some(Tok::Str(s)) => Ok(Term::Const(Value::Str(s))),
            Some(Tok::Bool(b)) => Ok(Term::Const(Value::Bool(b))),
            _ => Err(self.err("expected a term (variable or constant)")),
        }
    }

    fn atom_args(&mut self) -> Result<Vec<Term>, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.pos += 1;
            return Ok(terms);
        }
        loop {
            terms.push(self.term()?);
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => return Err(self.err("expected ',' or ')' in atom arguments")),
            }
        }
        Ok(terms)
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let name = self.ident("relation name")?;
        let terms = self.atom_args()?;
        Ok(Atom::new(name, terms))
    }

    /// Parses `atom | comparison` — disambiguated by the token after the
    /// first term: an identifier followed by `(` is an atom.
    fn body_item(&mut self) -> Result<BodyItem, ParseError> {
        if let Some(Tok::Ident(_)) = self.peek() {
            if self.toks.get(self.pos + 1).map(|s| &s.tok) == Some(&Tok::LParen) {
                return Ok(BodyItem::Atom(self.atom()?));
            }
        }
        let lhs = self.term()?;
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            _ => return Err(self.err("expected comparison operator")),
        };
        let rhs = self.term()?;
        Ok(BodyItem::Cmp(Comparison { lhs, op, rhs }))
    }

    fn body(&mut self) -> Result<CqBody, ParseError> {
        let mut atoms = Vec::new();
        let mut comparisons = Vec::new();
        loop {
            match self.body_item()? {
                BodyItem::Atom(a) => atoms.push(a),
                BodyItem::Cmp(c) => comparisons.push(c),
            }
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(CqBody::new(atoms, comparisons))
    }

    fn eat_optional_dot(&mut self) {
        if self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.toks.len()
    }
}

enum BodyItem {
    Atom(Atom),
    Cmp(Comparison),
}

/// Parses a user query: `head(X, ...) :- body.` (trailing dot optional).
pub fn parse_query(src: &str) -> Result<ConjunctiveQuery, ParseError> {
    let mut p = Parser::new(src)?;
    let head = p.atom()?;
    p.expect(&Tok::Turnstile, "':-'")?;
    let body = p.body()?;
    p.eat_optional_dot();
    if !p.at_end() {
        return Err(p.err("trailing input after query"));
    }
    let names = p.vars.into_names();
    ConjunctiveQuery::new(head, body, names).map_err(Into::into)
}

/// Parses a coordination rule:
/// `rule name: head_atoms <- body.` (the `rule name:` prefix is optional —
/// an anonymous rule gets the name `"rule"`).
pub fn parse_rule(src: &str) -> Result<GlavRule, ParseError> {
    let mut p = Parser::new(src)?;
    let name = if p.peek() == Some(&Tok::KwRule) {
        p.pos += 1;
        let n = p.ident("rule name")?;
        p.expect(&Tok::Colon, "':'")?;
        n
    } else {
        "rule".to_owned()
    };
    let mut head = vec![p.atom()?];
    while p.peek() == Some(&Tok::Comma) {
        p.pos += 1;
        head.push(p.atom()?);
    }
    p.expect(&Tok::LeftArrow, "'<-'")?;
    let body = p.body()?;
    p.eat_optional_dot();
    if !p.at_end() {
        return Err(p.err("trailing input after rule"));
    }
    let names = p.vars.into_names();
    GlavRule::new(name, head, body, names).map_err(Into::into)
}

/// Parses a sequence of ground facts: `rel(c1, ...). rel2(...).`
/// Returns `(relation, tuple)` pairs in source order.
pub fn parse_facts(src: &str) -> Result<Vec<(String, Tuple)>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !p.at_end() {
        let name = p.ident("relation name")?;
        let terms = p.atom_args()?;
        let mut values = Vec::with_capacity(terms.len());
        for t in terms {
            match t {
                Term::Const(v) => values.push(v),
                Term::Var(_) => return Err(p.err("facts must be ground (no variables)")),
            }
        }
        p.expect(&Tok::Dot, "'.' after fact")?;
        out.push((name, Tuple::new(values)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::Var;
    use crate::tup;

    #[test]
    fn parse_simple_query() {
        let q = parse_query("ans(X, Y) :- edge(X, Y).").unwrap();
        assert_eq!(q.head.relation, "ans");
        assert_eq!(q.body.atoms.len(), 1);
        assert_eq!(q.var_name(Var(0)), "X");
    }

    #[test]
    fn parse_query_with_comparisons_and_constants() {
        let q = parse_query(r#"adult(N) :- person(N, A), A >= 18, N != "root""#).unwrap();
        assert_eq!(q.body.comparisons.len(), 2);
        assert_eq!(q.body.atoms[0].terms.len(), 2);
    }

    #[test]
    fn parse_query_unsafe_head_rejected() {
        let err = parse_query("ans(X, Z) :- edge(X, Y).").unwrap_err();
        assert!(err.message.contains("head variable"));
    }

    #[test]
    fn parse_rule_named() {
        let r = parse_rule("rule r1: person(N, A) <- emp(N, A), A >= 18.").unwrap();
        assert_eq!(r.name, "r1");
        assert_eq!(r.to_string(), "rule r1: person(N, A) <- emp(N, A), A >= 18");
    }

    #[test]
    fn parse_rule_anonymous_and_existential() {
        let r = parse_rule("person(N, D), dept(D) <- emp(N, A)").unwrap();
        assert_eq!(r.name, "rule");
        assert_eq!(r.head.len(), 2);
        assert!(r.has_existentials());
    }

    #[test]
    fn parse_rule_display_round_trip() {
        let src = "rule r2: person(N, D), dept(D) <- emp(N, A)";
        let r = parse_rule(src).unwrap();
        let r2 = parse_rule(&r.to_string()).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn anonymous_variables_are_distinct() {
        let q = parse_query("ans(X) :- r(X, _, _).").unwrap();
        // X, _anon1, _anon2
        assert_eq!(q.var_names.len(), 3);
        let a = q.body.atoms[0].terms[1].as_var().unwrap();
        let b = q.body.atoms[0].terms[2].as_var().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn parse_facts_basic() {
        let fs = parse_facts(
            r#"
            % the demo data
            emp("alice", 30).
            emp("bob", -5).
            flag(true).
            "#,
        )
        .unwrap();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0], ("emp".into(), tup!["alice", 30]));
        assert_eq!(fs[1], ("emp".into(), tup!["bob", -5]));
        assert_eq!(fs[2], ("flag".into(), tup![true]));
    }

    #[test]
    fn parse_facts_reject_variables() {
        assert!(parse_facts("emp(X).").unwrap_err().message.contains("ground"));
    }

    #[test]
    fn string_escapes() {
        let fs = parse_facts(r#"r("a\"b\nc")."#).unwrap();
        assert_eq!(fs[0].1[0], Value::str("a\"b\nc"));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_query("ans(X) :- \n  edge(X Y).").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 1);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(parse_facts(r#"r("oops"#).is_err());
    }

    #[test]
    fn bad_operator_errors() {
        assert!(parse_query("a(X) :- r(X), X ! 3").is_err());
    }

    #[test]
    fn empty_args_atom() {
        let q = parse_query("ans() :- marker().").unwrap();
        assert_eq!(q.head.arity(), 0);
        assert_eq!(q.body.atoms[0].arity(), 0);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("a(X) :- r(X). extra").is_err());
        assert!(parse_rule("a(X) <- r(X). rule").is_err());
    }

    #[test]
    fn negative_integers() {
        let fs = parse_facts("t(-42).").unwrap();
        assert_eq!(fs[0].1[0], Value::Int(-42));
    }

    #[test]
    fn comparison_between_variables() {
        let q = parse_query("ans(X, Y) :- e(X, Y), X < Y.").unwrap();
        assert_eq!(q.body.comparisons[0].op, CmpOp::Lt);
    }
}
