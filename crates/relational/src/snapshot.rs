//! Durable snapshots of database instances.
//!
//! The paper's nodes sit on an RDBMS; ours are in-memory, so persistence
//! is provided as explicit, versioned snapshots. A snapshot captures one
//! [`Instance`] plus the node's [`NullFactory`] state — restoring without
//! the factory would risk re-issuing null labels that already occur in the
//! data, silently merging distinct unknowns.

use crate::instance::Instance;
use crate::value::NullFactory;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Snapshot format version; bump on layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A persisted database state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version (checked on load).
    pub version: u32,
    /// The instance.
    pub instance: Instance,
    /// The null factory, so restored nodes keep inventing fresh labels.
    pub nulls: NullFactory,
}

/// Snapshot errors.
#[derive(Debug)]
pub enum SnapshotError {
    /// The payload is not valid snapshot JSON.
    Corrupt(String),
    /// The snapshot was written by an incompatible version.
    VersionMismatch {
        /// Version found in the payload.
        found: u32,
        /// Version this library writes.
        expected: u32,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Corrupt(e) => write!(f, "corrupt snapshot: {e}"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl Snapshot {
    /// Captures the given state.
    pub fn capture(instance: &Instance, nulls: &NullFactory) -> Self {
        Snapshot { version: SNAPSHOT_VERSION, instance: instance.clone(), nulls: nulls.clone() }
    }

    /// Serialises to JSON bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("snapshot types are serialisable")
    }

    /// Restores from JSON bytes, checking the format version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let snap: Snapshot =
            serde_json::from_slice(bytes).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: snap.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::{Value, ValueType};
    use crate::Tuple;

    fn sample() -> (Instance, NullFactory) {
        let mut inst = Instance::new();
        inst.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Str]));
        inst.insert("r", tup![1, "a"]).unwrap();
        let mut nulls = NullFactory::new(7);
        let n = nulls.fresh();
        inst.get_mut("r").unwrap().insert(Tuple::new(vec![Value::Int(2), Value::Null(n)])).unwrap();
        (inst, nulls)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (inst, nulls) = sample();
        let snap = Snapshot::capture(&inst, &nulls);
        let restored = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored.instance, inst);
        assert_eq!(restored.nulls.invented(), nulls.invented());
    }

    #[test]
    fn restored_factory_keeps_labels_fresh() {
        let (inst, nulls) = sample();
        let bytes = Snapshot::capture(&inst, &nulls).to_bytes();
        let mut restored = Snapshot::from_bytes(&bytes).unwrap();
        let next = restored.nulls.fresh();
        // Must not collide with the label already in the data.
        let existing: Vec<_> = restored
            .instance
            .get("r")
            .unwrap()
            .iter()
            .flat_map(|t| t.nulls().collect::<Vec<_>>())
            .collect();
        assert!(!existing.contains(&next));
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        assert!(matches!(Snapshot::from_bytes(b"not json"), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (inst, nulls) = sample();
        let mut snap = Snapshot::capture(&inst, &nulls);
        snap.version = 99;
        let bytes = serde_json::to_vec(&snap).unwrap();
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::VersionMismatch { found: 99, .. })
        ));
    }
}
