//! Durable snapshots of database instances.
//!
//! The paper's nodes sit on an RDBMS; ours are in-memory, so persistence
//! is provided as explicit, versioned snapshots. A snapshot captures one
//! [`Instance`] plus the node's [`NullFactory`] state — restoring without
//! the factory would risk re-issuing null labels that already occur in the
//! data, silently merging distinct unknowns.

use crate::instance::Instance;
use crate::value::NullFactory;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Snapshot format version; bump on layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A persisted database state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version (checked on load).
    pub version: u32,
    /// The instance.
    pub instance: Instance,
    /// The null factory, so restored nodes keep inventing fresh labels.
    pub nulls: NullFactory,
}

/// Snapshot errors.
#[derive(Debug)]
pub enum SnapshotError {
    /// The payload does not decode as a snapshot (JSON or binary).
    Corrupt(String),
    /// The snapshot failed to *encode* — a bug surfaced to the caller
    /// instead of panicking inside the storage layer.
    Encode(String),
    /// The snapshot was written by an incompatible version.
    VersionMismatch {
        /// Version found in the payload.
        found: u32,
        /// Version this library writes.
        expected: u32,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Corrupt(e) => write!(f, "corrupt snapshot: {e}"),
            SnapshotError::Encode(e) => write!(f, "snapshot failed to encode: {e}"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl Snapshot {
    /// Captures the given state.
    pub fn capture(instance: &Instance, nulls: &NullFactory) -> Self {
        Snapshot { version: SNAPSHOT_VERSION, instance: instance.clone(), nulls: nulls.clone() }
    }

    /// Serialises to JSON bytes. An encoder failure is reported, not
    /// panicked through the serde shim.
    pub fn to_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        serde_json::to_vec(self).map_err(|e| SnapshotError::Encode(e.to_string()))
    }

    /// Restores from JSON bytes, checking the format version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let snap: Snapshot =
            serde_json::from_slice(bytes).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: snap.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        Ok(snap)
    }

    /// Serialises to the compact binary format (`crate::binenc`):
    /// varint version, null factory, instance — deterministic bytes for
    /// equal states (relations encode their tuples sorted).
    pub fn to_binary_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        crate::binenc::put_u32(&mut out, self.version);
        crate::binenc::put_factory(&mut out, &self.nulls);
        crate::binenc::put_instance(&mut out, &self.instance);
        out
    }

    /// Restores from binary bytes, checking the format version. Any
    /// truncation, wild length or unknown tag is [`SnapshotError::Corrupt`].
    ///
    /// The version gate fires **before** the payload is decoded: a
    /// future-version snapshot (whose layout this decoder may not even
    /// parse) reports [`SnapshotError::VersionMismatch`], not a
    /// misleading corruption error.
    pub fn from_binary_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = crate::binenc::Reader::new(bytes);
        let version = r.u32().map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        (|| -> Result<Snapshot, crate::binenc::BinDecodeError> {
            let nulls = crate::binenc::take_factory(&mut r)?;
            let instance = crate::binenc::take_instance(&mut r)?;
            r.expect_end()?;
            Ok(Snapshot { version, instance, nulls })
        })()
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::{Value, ValueType};
    use crate::Tuple;

    fn sample() -> (Instance, NullFactory) {
        let mut inst = Instance::new();
        inst.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Str]));
        inst.insert("r", tup![1, "a"]).unwrap();
        let mut nulls = NullFactory::new(7);
        let n = nulls.fresh();
        inst.get_mut("r").unwrap().insert(Tuple::new(vec![Value::Int(2), Value::Null(n)])).unwrap();
        (inst, nulls)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (inst, nulls) = sample();
        let snap = Snapshot::capture(&inst, &nulls);
        let restored = Snapshot::from_bytes(&snap.to_bytes().unwrap()).unwrap();
        assert_eq!(restored.instance, inst);
        assert_eq!(restored.nulls.invented(), nulls.invented());
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let (inst, nulls) = sample();
        let snap = Snapshot::capture(&inst, &nulls);
        let bytes = snap.to_binary_bytes();
        // The binary form is what buys the recovery speedup: it must be
        // materially smaller than the JSON it replaces.
        assert!(bytes.len() < snap.to_bytes().unwrap().len());
        let restored = Snapshot::from_binary_bytes(&bytes).unwrap();
        assert_eq!(restored.instance, inst);
        assert_eq!(restored.nulls.invented(), nulls.invented());
        assert_eq!(restored.nulls.origin(), nulls.origin());
    }

    #[test]
    fn binary_corruption_and_version_are_typed() {
        let (inst, nulls) = sample();
        let mut snap = Snapshot::capture(&inst, &nulls);
        // Garbage where the payload should be (after a valid version) is
        // corruption; so is an empty input.
        assert!(matches!(Snapshot::from_binary_bytes(b""), Err(SnapshotError::Corrupt(_))));
        let mut bytes = Vec::new();
        crate::binenc::put_u32(&mut bytes, SNAPSHOT_VERSION);
        bytes.extend_from_slice(b"\xFF\xFF garbage");
        assert!(matches!(Snapshot::from_binary_bytes(&bytes), Err(SnapshotError::Corrupt(_))));
        // The version gate fires *before* payload decode: a mismatched
        // version reports as such even though the rest would parse —
        // and garbage that merely decodes to a wild version number is a
        // mismatch too, not a misleading corruption error.
        snap.version = 7;
        assert!(matches!(
            Snapshot::from_binary_bytes(&snap.to_binary_bytes()),
            Err(SnapshotError::VersionMismatch { found: 7, .. })
        ));
        assert!(matches!(
            Snapshot::from_binary_bytes(b"\xFF\xFF\xFF garbage"),
            Err(SnapshotError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn restored_factory_keeps_labels_fresh() {
        let (inst, nulls) = sample();
        let bytes = Snapshot::capture(&inst, &nulls).to_bytes().unwrap();
        let mut restored = Snapshot::from_bytes(&bytes).unwrap();
        let next = restored.nulls.fresh();
        // Must not collide with the label already in the data.
        let existing: Vec<_> = restored
            .instance
            .get("r")
            .unwrap()
            .iter()
            .flat_map(|t| t.nulls().collect::<Vec<_>>())
            .collect();
        assert!(!existing.contains(&next));
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        assert!(matches!(Snapshot::from_bytes(b"not json"), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (inst, nulls) = sample();
        let mut snap = Snapshot::capture(&inst, &nulls);
        snap.version = 99;
        let bytes = serde_json::to_vec(&snap).unwrap();
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::VersionMismatch { found: 99, .. })
        ));
    }
}
