//! Human-readable rendering of relations and answer sets — the library
//! replacement for the demo's "browse streaming results" UI.

use crate::relation::Relation;
use crate::tuple::Tuple;
use std::fmt::Write as _;

/// Renders tuples as an aligned ASCII table with the given column headers.
pub fn render_table(headers: &[&str], tuples: &[Tuple]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let rendered: Vec<Vec<String>> = tuples
        .iter()
        .map(|t| (0..cols).map(|i| t.get(i).map_or(String::new(), |v| v.to_string())).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    rule(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, " {h:<w$} |");
    }
    out.push('\n');
    rule(&mut out);
    for row in &rendered {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {cell:<w$} |");
        }
        out.push('\n');
    }
    rule(&mut out);
    out
}

/// Renders a whole relation (sorted for determinism) with its schema's
/// column names as headers.
pub fn render_relation(rel: &Relation) -> String {
    let headers: Vec<&str> = rel.schema().columns.iter().map(|c| c.name.as_str()).collect();
    let mut out = format!("{} ({} tuples)\n", rel.name(), rel.len());
    out.push_str(&render_table(&headers, &rel.sorted()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::ValueType;

    #[test]
    fn table_is_aligned() {
        let s = render_table(&["name", "age"], &[tup!["alice", 30], tup!["bob", 7]]);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains("name"));
        assert!(lines[3].contains("\"alice\""));
        // All rows equally wide.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn relation_render_includes_name_and_count() {
        let mut r =
            Relation::new(RelationSchema::with_types("emp", &[ValueType::Str, ValueType::Int]));
        r.insert(tup!["zed", 1]).unwrap();
        let s = render_relation(&r);
        assert!(s.starts_with("emp (1 tuples)"));
        assert!(s.contains("c0"));
    }

    #[test]
    fn empty_table() {
        let s = render_table(&["x"], &[]);
        assert_eq!(s.lines().count(), 4); // rule, header, rule, rule
    }
}
