//! # codb-relational
//!
//! The relational substrate of the coDB reproduction (VLDB'04): an
//! in-memory, set-semantics relational engine providing exactly what the
//! coDB node algorithms need —
//!
//! * typed [`Value`]s including **marked nulls** ([`value::NullId`]) with
//!   labelled-null join semantics;
//! * [`Relation`]s/[`Instance`]s with duplicate-suppressing batch insertion
//!   returning deltas (`T' = T \ R`);
//! * [`cq::ConjunctiveQuery`] evaluation with comparison predicates
//!   ([`eval`]), including **semi-naive delta evaluation**;
//! * **GLAV coordination rules** ([`glav::GlavRule`]) whose execution
//!   produces [`glav::RuleFiring`]s — the wire unit of coDB data migration,
//!   with existential placeholders instantiated as fresh nulls at the
//!   target;
//! * a text [`parser`] for queries, rules and facts (the super-peer's rule
//!   file format builds on it);
//! * versioned [`snapshot`]s of instances plus the compact [`binenc`]
//!   binary wire format they (and `codb-store`'s WAL records) encode to.
//!
//! In the paper's architecture this crate plays the role of the RDBMS + the
//! Wrapper: "when LDB does not support nested queries, then this is the
//! responsibility of Wrapper to provide this support … all required
//! database operations (as join and project) are executed in Wrapper".

#![warn(missing_docs)]

pub mod algebra;
pub mod binenc;
pub mod cq;
pub mod eval;
pub mod glav;
pub mod instance;
pub mod iso;
pub mod parser;
pub mod pretty;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod tuple;
pub mod value;

pub use algebra::AlgebraError;
pub use cq::{Atom, CmpOp, Comparison, ConjunctiveQuery, CqBody, Term, Var, VarPool};
pub use eval::{answer_query, certain_answers, evaluate_body, evaluate_body_delta};
pub use glav::{apply_firings, GlavRule, RuleFiring, TField};
pub use instance::Instance;
pub use iso::{homomorphic, isomorphic};
pub use parser::{parse_facts, parse_query, parse_rule, ParseError};
pub use relation::Relation;
pub use schema::{Column, DatabaseSchema, RelationSchema, SchemaError};
pub use snapshot::{Snapshot, SnapshotError};
pub use tuple::Tuple;
pub use value::{NullFactory, NullId, Value, ValueType};
