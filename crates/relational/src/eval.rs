//! Conjunctive-query evaluation.
//!
//! Two evaluators are provided:
//!
//! * [`evaluate_body`] — the production evaluator: greedy atom ordering
//!   (most-bound-first, then smallest relation), per-atom hash indexes on
//!   the first statically bound column, comparisons applied as early as
//!   their variables are bound.
//! * [`evaluate_body_reference`] — a deliberately naive nested-loop
//!   evaluator used as an oracle by property-based tests.
//!
//! [`evaluate_body_delta`] implements the *semi-naive* variant coDB's
//! global update algorithm relies on: given a delta `T'` for one relation,
//! it computes exactly the derivations that use at least one delta tuple in
//! the designated relation, by evaluating the body once per occurrence of
//! that relation with the occurrence restricted to `T'`.

use crate::cq::{Atom, CqBody, Term, Var};
use crate::instance::Instance;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A (partial) assignment of values to variables, indexed by `Var`.
pub type Bindings = Vec<Option<Value>>;

/// Evaluation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// The body references a relation the instance does not declare.
    UnknownRelation(String),
    /// An atom's arity differs from its relation's arity.
    AtomArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity declared by the instance.
        relation_arity: usize,
        /// Arity used by the atom.
        atom_arity: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            EvalError::AtomArityMismatch { relation, relation_arity, atom_arity } => write!(
                f,
                "atom over {relation} has arity {atom_arity}, relation has {relation_arity}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Number of variable slots needed to evaluate `body` (max var index + 1).
pub fn var_slots(body: &CqBody) -> usize {
    body.atoms
        .iter()
        .flat_map(|a| a.vars())
        .chain(body.comparisons.iter().flat_map(|c| c.vars()))
        .map(|v| v.0 as usize + 1)
        .max()
        .unwrap_or(0)
}

fn check_atoms(body: &CqBody, inst: &Instance) -> Result<(), EvalError> {
    for atom in &body.atoms {
        let rel = inst
            .get(&atom.relation)
            .ok_or_else(|| EvalError::UnknownRelation(atom.relation.clone()))?;
        if rel.arity() != atom.arity() {
            return Err(EvalError::AtomArityMismatch {
                relation: atom.relation.clone(),
                relation_arity: rel.arity(),
                atom_arity: atom.arity(),
            });
        }
    }
    Ok(())
}

/// Tries to extend `bindings` so that `atom` matches `tuple`; rolls back and
/// returns `false` on mismatch. On success, newly bound variables are pushed
/// onto `trail` so the caller can undo them.
fn match_atom(atom: &Atom, tuple: &Tuple, bindings: &mut Bindings, trail: &mut Vec<Var>) -> bool {
    let start = trail.len();
    for (term, value) in atom.terms.iter().zip(tuple.values()) {
        let ok = match term {
            Term::Const(c) => c == value,
            Term::Var(v) => match &bindings[v.0 as usize] {
                Some(bound) => bound == value,
                None => {
                    bindings[v.0 as usize] = Some(value.clone());
                    trail.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in trail.drain(start..) {
                bindings[v.0 as usize] = None;
            }
            return false;
        }
    }
    true
}

fn undo(bindings: &mut Bindings, trail: &mut Vec<Var>, mark: usize) {
    for v in trail.drain(mark..) {
        bindings[v.0 as usize] = None;
    }
}

fn term_value<'a>(term: &'a Term, bindings: &'a Bindings) -> Option<&'a Value> {
    match term {
        Term::Const(c) => Some(c),
        Term::Var(v) => bindings[v.0 as usize].as_ref(),
    }
}

fn comparisons_hold(body: &CqBody, bindings: &Bindings) -> bool {
    body.comparisons.iter().all(|c| {
        match (term_value(&c.lhs, bindings), term_value(&c.rhs, bindings)) {
            (Some(a), Some(b)) => c.op.eval(a, b),
            // Unbound comparison operand can only happen mid-join; treat as
            // "not yet refuted".
            _ => true,
        }
    })
}

/// Greedy join order: repeatedly pick the atom with the most already-bound
/// argument positions, breaking ties by smaller relation cardinality.
/// Returns atom indexes in evaluation order.
fn plan_order(body: &CqBody, inst: &Instance, pinned_first: Option<usize>) -> Vec<usize> {
    let n = body.atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    if let Some(p) = pinned_first {
        order.push(p);
        used[p] = true;
        bound.extend(body.atoms[p].vars());
    }
    while order.len() < n {
        let mut best: Option<(usize, usize, usize)> = None; // (idx, -boundness proxy, size)
        for (i, atom) in body.atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let boundness = atom
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .count();
            let size = inst.get(&atom.relation).map_or(0, |r| r.len());
            let candidate = (i, boundness, size);
            best = match best {
                None => Some(candidate),
                Some((bi, bb, bs)) => {
                    // Prefer higher boundness; then smaller relation; then index.
                    if boundness > bb || (boundness == bb && size < bs) {
                        Some(candidate)
                    } else {
                        Some((bi, bb, bs))
                    }
                }
            };
        }
        let (i, _, _) = best.expect("unused atom must exist");
        used[i] = true;
        bound.extend(body.atoms[i].vars());
        order.push(i);
    }
    order
}

/// Candidate tuple source for one atom: either the full relation or an
/// explicit delta batch.
enum Source<'a> {
    Relation(&'a crate::relation::Relation),
    Batch(&'a [Tuple]),
}

impl<'a> Source<'a> {
    fn iter(&self) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        match self {
            Source::Relation(r) => Box::new(r.iter()),
            Source::Batch(b) => Box::new(b.iter()),
        }
    }

    fn len(&self) -> usize {
        match self {
            Source::Relation(r) => r.len(),
            Source::Batch(b) => b.len(),
        }
    }
}

/// One scheduled atom with an optional prebuilt index.
struct Step<'a> {
    atom: &'a Atom,
    source: Source<'a>,
    /// Column used for index lookup, if one is statically bound.
    index_col: Option<usize>,
    /// value-at-index-col → tuples; built lazily on first use.
    index: Option<HashMap<Value, Vec<&'a Tuple>>>,
}

fn build_steps<'a>(
    body: &'a CqBody,
    inst: &'a Instance,
    order: &[usize],
    delta: Option<(usize, &'a [Tuple])>,
) -> Vec<Step<'a>> {
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    let mut steps = Vec::with_capacity(order.len());
    for &i in order {
        let atom = &body.atoms[i];
        let source = match delta {
            Some((di, batch)) if di == i => Source::Batch(batch),
            _ => Source::Relation(inst.get(&atom.relation).expect("checked")),
        };
        // First argument position whose term is statically bound here.
        let index_col = atom.terms.iter().position(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        });
        bound.extend(atom.vars());
        steps.push(Step { atom, source, index_col, index: None });
    }
    steps
}

/// Recursive index-nested-loop join: consumes one planned step, extends the
/// bindings for each matching candidate tuple, recurses on the rest.
fn join<'a>(
    steps: &mut [Step<'a>],
    body: &CqBody,
    bindings: &mut Bindings,
    trail: &mut Vec<Var>,
    out: &mut dyn FnMut(&Bindings),
) {
    let Some((step, rest)) = steps.split_first_mut() else {
        if comparisons_hold(body, bindings) {
            out(bindings);
        }
        return;
    };
    let mark = trail.len();

    // Index-accelerated path: look up candidates by the bound column value.
    if let Some(col) = step.index_col {
        let key = term_value(&step.atom.terms[col], bindings).cloned();
        if let Some(key) = key {
            // Build the index lazily, once, when the source is large enough
            // to make hashing worthwhile.
            if step.index.is_none() && step.source.len() >= 8 {
                let mut idx: HashMap<Value, Vec<&Tuple>> = HashMap::new();
                for t in step.source.iter() {
                    idx.entry(t[col].clone()).or_default().push(t);
                }
                step.index = Some(idx);
            }
            if let Some(idx) = &step.index {
                if let Some(cands) = idx.get(&key) {
                    // Clone candidate list to release the borrow on `step`.
                    let cands: Vec<&Tuple> = cands.clone();
                    for t in cands {
                        if match_atom(step.atom, t, bindings, trail)
                            && comparisons_hold(body, bindings)
                        {
                            join(rest, body, bindings, trail, out);
                        }
                        undo(bindings, trail, mark);
                    }
                }
                return;
            }
        }
    }
    // Scan path.
    let cands: Vec<&Tuple> = step.source.iter().collect();
    for t in cands {
        if match_atom(step.atom, t, bindings, trail) && comparisons_hold(body, bindings) {
            join(rest, body, bindings, trail, out);
        }
        undo(bindings, trail, mark);
    }
}

/// Evaluates `body` against `inst`, returning every satisfying assignment.
///
/// Assignments are complete for all variables occurring in relational atoms;
/// slots for unused variable indexes remain `None`.
pub fn evaluate_body(body: &CqBody, inst: &Instance) -> Result<Vec<Bindings>, EvalError> {
    evaluate_with_delta(body, inst, None)
}

/// Semi-naive evaluation: returns assignments from derivations that use a
/// tuple of `delta` in at least one occurrence of `delta_relation`.
///
/// Implements the paper's "incoming links, which are dependent on O, are
/// computed by substituting R by T'": each occurrence of the relation is
/// substituted in turn, which covers every derivation touching the delta at
/// least once (derivations touching it several times are produced multiple
/// times and de-duplicated downstream by set semantics).
pub fn evaluate_body_delta(
    body: &CqBody,
    inst: &Instance,
    delta_relation: &str,
    delta: &[Tuple],
) -> Result<Vec<Bindings>, EvalError> {
    check_atoms(body, inst)?;
    let mut all = Vec::new();
    for (i, atom) in body.atoms.iter().enumerate() {
        if atom.relation == delta_relation {
            all.extend(evaluate_with_delta(body, inst, Some((i, delta)))?);
        }
    }
    Ok(all)
}

fn evaluate_with_delta(
    body: &CqBody,
    inst: &Instance,
    delta: Option<(usize, &[Tuple])>,
) -> Result<Vec<Bindings>, EvalError> {
    check_atoms(body, inst)?;
    if body.atoms.is_empty() {
        // An empty body is trivially satisfied by the empty assignment (only
        // meaningful for constant heads).
        return Ok(vec![vec![None; var_slots(body)]]);
    }
    let order = plan_order(body, inst, delta.map(|(i, _)| i));
    let mut steps = build_steps(body, inst, &order, delta);
    let mut bindings: Bindings = vec![None; var_slots(body)];
    let mut trail: Vec<Var> = Vec::new();
    let mut results = Vec::new();
    join(&mut steps, body, &mut bindings, &mut trail, &mut |b| results.push(b.clone()));
    Ok(results)
}

/// Oracle evaluator: plain nested loops in textual atom order, no indexes,
/// comparisons checked only at the end. Exponentially slower but obviously
/// correct; property tests compare it against [`evaluate_body`].
pub fn evaluate_body_reference(body: &CqBody, inst: &Instance) -> Result<Vec<Bindings>, EvalError> {
    check_atoms(body, inst)?;
    let slots = var_slots(body);
    let mut results = Vec::new();
    fn rec(
        atoms: &[Atom],
        inst: &Instance,
        body: &CqBody,
        bindings: &mut Bindings,
        results: &mut Vec<Bindings>,
    ) {
        match atoms.split_first() {
            None => {
                let full = body.comparisons.iter().all(|c| {
                    match (term_value(&c.lhs, bindings), term_value(&c.rhs, bindings)) {
                        (Some(a), Some(b)) => c.op.eval(a, b),
                        _ => false,
                    }
                });
                if full {
                    results.push(bindings.clone());
                }
            }
            Some((atom, rest)) => {
                let rel = inst.get(&atom.relation).expect("checked");
                for t in rel.sorted() {
                    let mut trail = Vec::new();
                    if match_atom(atom, &t, bindings, &mut trail) {
                        rec(rest, inst, body, bindings, results);
                    }
                    for v in trail {
                        bindings[v.0 as usize] = None;
                    }
                }
            }
        }
    }
    let mut bindings = vec![None; slots];
    if body.atoms.is_empty() {
        return Ok(vec![bindings]);
    }
    rec(&body.atoms, inst, body, &mut bindings, &mut results);
    Ok(results)
}

/// Projects `head` through an assignment, mapping unbound variables via
/// `on_unbound` (rule application passes a fresh-null factory; user queries
/// never hit it because their heads are safe).
pub fn project_atom(
    atom: &Atom,
    bindings: &Bindings,
    on_unbound: &mut dyn FnMut(Var) -> Value,
) -> Tuple {
    let values = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => c.clone(),
            Term::Var(v) => bindings[v.0 as usize].clone().unwrap_or_else(|| on_unbound(*v)),
        })
        .collect::<Vec<_>>();
    Tuple::new(values)
}

/// Evaluates a user query: answers are head projections, deduplicated and
/// sorted for determinism.
pub fn answer_query(
    query: &crate::cq::ConjunctiveQuery,
    inst: &Instance,
) -> Result<Vec<Tuple>, EvalError> {
    let assignments = evaluate_body(&query.body, inst)?;
    let mut set: BTreeSet<Tuple> = BTreeSet::new();
    for b in assignments {
        set.insert(project_atom(&query.head, &b, &mut |v| {
            unreachable!("safe query head var {v:?} unbound")
        }));
    }
    Ok(set.into_iter().collect())
}

/// Certain answers: answers that contain no marked null.
pub fn certain_answers(
    query: &crate::cq::ConjunctiveQuery,
    inst: &Instance,
) -> Result<Vec<Tuple>, EvalError> {
    Ok(answer_query(query, inst)?.into_iter().filter(|t| !t.has_null()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{CmpOp, Comparison, ConjunctiveQuery};
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::ValueType;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    fn db() -> Instance {
        let mut i = Instance::new();
        i.add_relation(RelationSchema::with_types("e", &[ValueType::Int, ValueType::Int]));
        i.add_relation(RelationSchema::with_types("p", &[ValueType::Str, ValueType::Int]));
        for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 3)] {
            i.insert("e", tup![a, b]).unwrap();
        }
        for (n, a) in [("alice", 30), ("bob", 17), ("carol", 45)] {
            i.insert("p", tup![n, a]).unwrap();
        }
        i
    }

    fn query(head: Atom, body: CqBody, names: &[&str]) -> ConjunctiveQuery {
        ConjunctiveQuery::new(head, body, names.iter().map(|s| s.to_string()).collect()).unwrap()
    }

    #[test]
    fn single_atom_scan() {
        let q = query(
            Atom::new("ans", vec![v(0), v(1)]),
            CqBody::new(vec![Atom::new("e", vec![v(0), v(1)])], vec![]),
            &["X", "Y"],
        );
        assert_eq!(answer_query(&q, &db()).unwrap().len(), 4);
    }

    #[test]
    fn join_two_atoms() {
        // Paths of length 2: e(X,Y), e(Y,Z).
        let q = query(
            Atom::new("ans", vec![v(0), v(2)]),
            CqBody::new(
                vec![Atom::new("e", vec![v(0), v(1)]), Atom::new("e", vec![v(1), v(2)])],
                vec![],
            ),
            &["X", "Y", "Z"],
        );
        let ans = answer_query(&q, &db()).unwrap();
        assert_eq!(ans, vec![tup![1, 3], tup![1, 4], tup![2, 4]]);
    }

    #[test]
    fn constants_filter() {
        let q = query(
            Atom::new("ans", vec![v(0)]),
            CqBody::new(vec![Atom::new("e", vec![Term::Const(Value::Int(1)), v(0)])], vec![]),
            &["X"],
        );
        assert_eq!(answer_query(&q, &db()).unwrap(), vec![tup![2], tup![3]]);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut i = db();
        i.insert("e", tup![5, 5]).unwrap();
        let q = query(
            Atom::new("ans", vec![v(0)]),
            CqBody::new(vec![Atom::new("e", vec![v(0), v(0)])], vec![]),
            &["X"],
        );
        assert_eq!(answer_query(&q, &i).unwrap(), vec![tup![5]]);
    }

    #[test]
    fn comparisons_prune() {
        let q = query(
            Atom::new("ans", vec![v(0)]),
            CqBody::new(
                vec![Atom::new("p", vec![v(0), v(1)])],
                vec![Comparison::new(Var(1), CmpOp::Ge, Value::Int(18))],
            ),
            &["N", "A"],
        );
        assert_eq!(answer_query(&q, &db()).unwrap(), vec![tup!["alice"], tup!["carol"]]);
    }

    #[test]
    fn var_to_var_comparison() {
        let q = query(
            Atom::new("ans", vec![v(0), v(1)]),
            CqBody::new(
                vec![Atom::new("e", vec![v(0), v(1)])],
                vec![Comparison::new(Var(0), CmpOp::Lt, Var(1))],
            ),
            &["X", "Y"],
        );
        // All edges are increasing in the fixture.
        assert_eq!(answer_query(&q, &db()).unwrap().len(), 4);
    }

    #[test]
    fn cross_product_when_disconnected() {
        let q = query(
            Atom::new("ans", vec![v(0), v(1)]),
            CqBody::new(
                vec![Atom::new("p", vec![v(0), v(2)]), Atom::new("e", vec![v(1), v(3)])],
                vec![],
            ),
            &["N", "X", "A", "Y"],
        );
        // 3 persons x 3 distinct source vertices {1,2,3} ... e has sources 1,2,3,1.
        let ans = answer_query(&q, &db()).unwrap();
        assert_eq!(ans.len(), 3 * 3);
    }

    #[test]
    fn unknown_relation_error() {
        let body = CqBody::new(vec![Atom::new("zz", vec![v(0)])], vec![]);
        assert_eq!(
            evaluate_body(&body, &db()).unwrap_err(),
            EvalError::UnknownRelation("zz".into())
        );
    }

    #[test]
    fn atom_arity_mismatch_error() {
        let body = CqBody::new(vec![Atom::new("e", vec![v(0)])], vec![]);
        assert!(matches!(
            evaluate_body(&body, &db()).unwrap_err(),
            EvalError::AtomArityMismatch { atom_arity: 1, relation_arity: 2, .. }
        ));
    }

    #[test]
    fn delta_restricts_derivations() {
        // Body: e(X,Y), e(Y,Z). Delta {(2,3)} for e.
        let body = CqBody::new(
            vec![Atom::new("e", vec![v(0), v(1)]), Atom::new("e", vec![v(1), v(2)])],
            vec![],
        );
        let delta = vec![tup![2, 3]];
        let res = evaluate_body_delta(&body, &db(), "e", &delta).unwrap();
        // Occurrence 1: (2,3) then e(3,Z) → (2,3,4).
        // Occurrence 2: e(X,2) then (2,3) → (1,2,3).
        let mut tuples: Vec<Tuple> = res
            .iter()
            .map(|b| {
                Tuple::new(vec![
                    b[0].clone().unwrap(),
                    b[1].clone().unwrap(),
                    b[2].clone().unwrap(),
                ])
            })
            .collect();
        tuples.sort();
        tuples.dedup();
        assert_eq!(tuples, vec![tup![1, 2, 3], tup![2, 3, 4]]);
    }

    #[test]
    fn delta_on_absent_relation_is_empty() {
        let body = CqBody::new(vec![Atom::new("e", vec![v(0), v(1)])], vec![]);
        let res = evaluate_body_delta(&body, &db(), "p", &[tup!["x", 1]]).unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn reference_and_production_agree_on_fixture() {
        let body = CqBody::new(
            vec![Atom::new("e", vec![v(0), v(1)]), Atom::new("e", vec![v(1), v(2)])],
            vec![Comparison::new(Var(0), CmpOp::Le, Value::Int(2))],
        );
        let inst = db();
        let mut a: Vec<Bindings> = evaluate_body(&body, &inst).unwrap();
        let mut b: Vec<Bindings> = evaluate_body_reference(&body, &inst).unwrap();
        a.sort();
        b.sort();
        a.dedup();
        b.dedup();
        assert_eq!(a, b);
    }

    #[test]
    fn certain_answers_drop_nulls() {
        use crate::value::NullFactory;
        let mut i = Instance::new();
        i.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Int]));
        let mut f = NullFactory::new(9);
        i.get_mut("r")
            .unwrap()
            .insert(Tuple::new(vec![Value::Int(1), Value::Null(f.fresh())]))
            .unwrap();
        i.insert("r", tup![2, 2]).unwrap();
        let q = query(
            Atom::new("ans", vec![v(0), v(1)]),
            CqBody::new(vec![Atom::new("r", vec![v(0), v(1)])], vec![]),
            &["X", "Y"],
        );
        assert_eq!(answer_query(&q, &i).unwrap().len(), 2);
        assert_eq!(certain_answers(&q, &i).unwrap(), vec![tup![2, 2]]);
    }

    #[test]
    fn empty_relation_yields_no_answers() {
        let mut i = Instance::new();
        i.add_relation(RelationSchema::with_types("r", &[ValueType::Int]));
        let q = query(
            Atom::new("ans", vec![v(0)]),
            CqBody::new(vec![Atom::new("r", vec![v(0)])], vec![]),
            &["X"],
        );
        assert!(answer_query(&q, &i).unwrap().is_empty());
    }

    #[test]
    fn large_join_uses_index_correctly() {
        let mut i = Instance::new();
        i.add_relation(RelationSchema::with_types("a", &[ValueType::Int, ValueType::Int]));
        i.add_relation(RelationSchema::with_types("b", &[ValueType::Int, ValueType::Int]));
        for k in 0..200i64 {
            i.insert("a", tup![k, k + 1]).unwrap();
            i.insert("b", tup![k + 1, k + 2]).unwrap();
        }
        let q = query(
            Atom::new("ans", vec![v(0), v(2)]),
            CqBody::new(
                vec![Atom::new("a", vec![v(0), v(1)]), Atom::new("b", vec![v(1), v(2)])],
                vec![],
            ),
            &["X", "Y", "Z"],
        );
        assert_eq!(answer_query(&q, &i).unwrap().len(), 200);
    }
}
