//! Binary encoding hooks: a compact, versioned, length-prefixed
//! varint/tag wire format for the relational data model.
//!
//! This is the payload layer of `codb-store`'s binary on-disk codec. The
//! JSON shim encodes a two-column integer tuple in ~30 bytes of field
//! names and punctuation; this module encodes the same tuple in 4–6
//! bytes. Every primitive is either a tag byte or a LEB128 varint, so the
//! format is self-delimiting and the decoder can validate as it goes:
//!
//! * **varints** are little-endian base-128 (LEB128), at most 10 bytes
//!   for a `u64`; signed integers are ZigZag-mapped first so small
//!   negative numbers stay small on disk.
//! * **strings** are a varint byte length followed by UTF-8 bytes
//!   (validated on decode).
//! * **sums** ([`Value`], [`TField`]) are a one-byte tag followed by the
//!   variant payload; an unknown tag is a decode error, never a guess.
//! * **sequences** (tuples, relations, instances, firings) are a varint
//!   element count followed by the elements.
//!
//! The decoder ([`Reader`]) is written for adversarial input: any
//! truncation, wild length, unknown tag or invalid UTF-8 surfaces as a
//! typed [`BinDecodeError`] with a byte offset — it never panics and
//! never allocates proportionally to an unvalidated length. The outer
//! store frames add CRC-32 protection; this layer's own checks are what
//! turn a *decoded-but-meaningless* payload into a loud error.
//!
//! Encoding is deterministic: relations serialise their tuples in sorted
//! order (the in-memory `HashSet` order never leaks to disk), so equal
//! states encode to equal bytes — the property the codec-differential
//! fault-injection harness in `codb-workload` pins.

use crate::instance::Instance;
use crate::relation::Relation;
use crate::schema::{Column, RelationSchema};
use crate::tuple::Tuple;
use crate::value::{NullFactory, NullId, Value, ValueType};
use crate::{RuleFiring, TField};
use std::fmt;

/// A failed binary decode: where and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinDecodeError {
    /// Byte offset in the input at which decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for BinDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary decode failed at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for BinDecodeError {}

type DecodeResult<T> = Result<T, BinDecodeError>;

// ---- primitive writers ----

/// Appends a LEB128 varint.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a `u32` as a varint.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    put_u64(out, v as u64);
}

/// Appends a `usize` as a varint (element counts, lengths).
#[inline]
pub fn put_len(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Appends a ZigZag-mapped signed varint.
#[inline]
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends a boolean as one byte.
#[inline]
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Appends a length-prefixed UTF-8 string.
#[inline]
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Validating cursor over binary input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn err<T>(&self, detail: impl Into<String>) -> DecodeResult<T> {
        Err(BinDecodeError { offset: self.pos, detail: detail.into() })
    }

    /// One raw byte.
    pub fn byte(&mut self) -> DecodeResult<u8> {
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.err("unexpected end of input"),
        }
    }

    /// A LEB128 varint (at most 10 bytes).
    pub fn u64(&mut self) -> DecodeResult<u64> {
        let start = self.pos;
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            let bits = (byte & 0x7F) as u64;
            // The 10th byte may only carry the u64's top bit.
            if shift == 63 && bits > 1 {
                self.pos = start;
                return self.err("varint overflows u64");
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        self.pos = start;
        self.err("varint longer than 10 bytes")
    }

    /// A varint checked to fit `u32`.
    pub fn u32(&mut self) -> DecodeResult<u32> {
        let at = self.pos;
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| BinDecodeError {
            offset: at,
            detail: format!("value {v} does not fit u32"),
        })
    }

    /// A ZigZag-mapped signed varint.
    pub fn i64(&mut self) -> DecodeResult<i64> {
        let v = self.u64()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// A boolean byte (strictly 0 or 1).
    pub fn bool(&mut self) -> DecodeResult<bool> {
        let at = self.pos;
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(BinDecodeError { offset: at, detail: format!("invalid boolean byte {b}") }),
        }
    }

    /// An element count, checked against the bytes actually remaining
    /// (every element costs at least `min_bytes_each`), so a corrupted
    /// count can never drive a huge allocation or a long error-path loop.
    pub fn len(&mut self, min_bytes_each: usize) -> DecodeResult<usize> {
        let at = self.pos;
        let v = self.u64()?;
        let ceiling = (self.remaining() / min_bytes_each.max(1)) as u64;
        if v > ceiling {
            return Err(BinDecodeError {
                offset: at,
                detail: format!("length {v} exceeds the {ceiling} elements the input could hold"),
            });
        }
        Ok(v as usize)
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> DecodeResult<String> {
        let n = self.len(1)?;
        let at = self.pos;
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| BinDecodeError { offset: at, detail: format!("invalid UTF-8: {e}") })
    }

    /// Asserts every input byte was consumed (trailing garbage is a
    /// corruption signal, not padding).
    pub fn expect_end(&self) -> DecodeResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            self.err(format!("{} trailing bytes after the value", self.remaining()))
        }
    }
}

// ---- values and tuples ----

const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_NULL: u8 = 3;

/// Encodes one [`Value`].
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(TAG_INT);
            put_i64(out, *i);
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            put_bool(out, *b);
        }
        Value::Null(n) => {
            out.push(TAG_NULL);
            put_u64(out, n.origin);
            put_u64(out, n.seq);
        }
    }
}

/// Decodes one [`Value`].
pub fn take_value(r: &mut Reader<'_>) -> DecodeResult<Value> {
    let at = r.offset();
    match r.byte()? {
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_STR => Ok(Value::Str(r.str()?)),
        TAG_BOOL => Ok(Value::Bool(r.bool()?)),
        TAG_NULL => Ok(Value::Null(NullId::new(r.u64()?, r.u64()?))),
        t => Err(BinDecodeError { offset: at, detail: format!("unknown value tag {t}") }),
    }
}

/// Encodes one [`Tuple`] (arity + fields).
pub fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_len(out, t.arity());
    for v in t.values() {
        put_value(out, v);
    }
}

/// Decodes one [`Tuple`].
pub fn take_tuple(r: &mut Reader<'_>) -> DecodeResult<Tuple> {
    let n = r.len(1)?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(take_value(r)?);
    }
    Ok(Tuple::new(values))
}

// ---- schemas, relations, instances ----

fn put_value_type(out: &mut Vec<u8>, ty: ValueType) {
    out.push(match ty {
        ValueType::Int => TAG_INT,
        ValueType::Str => TAG_STR,
        ValueType::Bool => TAG_BOOL,
    });
}

fn take_value_type(r: &mut Reader<'_>) -> DecodeResult<ValueType> {
    let at = r.offset();
    match r.byte()? {
        TAG_INT => Ok(ValueType::Int),
        TAG_STR => Ok(ValueType::Str),
        TAG_BOOL => Ok(ValueType::Bool),
        t => Err(BinDecodeError { offset: at, detail: format!("unknown type tag {t}") }),
    }
}

/// Encodes one [`RelationSchema`].
pub fn put_schema(out: &mut Vec<u8>, schema: &RelationSchema) {
    put_str(out, &schema.name);
    put_len(out, schema.columns.len());
    for c in &schema.columns {
        put_str(out, &c.name);
        put_value_type(out, c.ty);
    }
}

/// Decodes one [`RelationSchema`].
pub fn take_schema(r: &mut Reader<'_>) -> DecodeResult<RelationSchema> {
    let name = r.str()?;
    let n = r.len(2)?;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let cname = r.str()?;
        columns.push(Column::new(cname, take_value_type(r)?));
    }
    Ok(RelationSchema::new(name, columns))
}

/// Encodes one [`Relation`]: schema, then the tuples in **sorted** order
/// (deterministic bytes for equal relations).
pub fn put_relation(out: &mut Vec<u8>, rel: &Relation) {
    put_schema(out, rel.schema());
    put_len(out, rel.len());
    for t in rel.sorted() {
        put_tuple(out, &t);
    }
}

/// Decodes one [`Relation`], re-validating every tuple against the
/// decoded schema (an ill-typed tuple is corruption, not data). The
/// encoding is canonical — sorted, duplicate-free — so a duplicate tuple
/// is rejected rather than silently collapsed into the set.
pub fn take_relation(r: &mut Reader<'_>) -> DecodeResult<Relation> {
    let schema = take_schema(r)?;
    let n = r.len(1)?;
    let mut rel = Relation::new(schema);
    for _ in 0..n {
        let at = r.offset();
        let t = take_tuple(r)?;
        let fresh = rel.insert(t).map_err(|e| BinDecodeError {
            offset: at,
            detail: format!("tuple violates its schema: {e}"),
        })?;
        if !fresh {
            return Err(BinDecodeError {
                offset: at,
                detail: "duplicate tuple in a relation (non-canonical encoding)".to_owned(),
            });
        }
    }
    Ok(rel)
}

/// Encodes one [`Instance`] (relations in name order).
pub fn put_instance(out: &mut Vec<u8>, inst: &Instance) {
    put_len(out, inst.relation_count());
    for rel in inst.relations() {
        put_relation(out, rel);
    }
}

/// Decodes one [`Instance`], rejecting a duplicate relation name (the
/// canonical encoding writes each name-keyed relation exactly once).
pub fn take_instance(r: &mut Reader<'_>) -> DecodeResult<Instance> {
    let n = r.len(2)?;
    let mut inst = Instance::new();
    for _ in 0..n {
        let at = r.offset();
        let rel = take_relation(r)?;
        if inst.get(rel.name()).is_some() {
            return Err(BinDecodeError {
                offset: at,
                detail: format!(
                    "duplicate relation {:?} in an instance (non-canonical encoding)",
                    rel.name()
                ),
            });
        }
        inst.insert_relation(rel);
    }
    Ok(inst)
}

/// Encodes one [`NullFactory`] (origin + counter).
pub fn put_factory(out: &mut Vec<u8>, nulls: &NullFactory) {
    put_u64(out, nulls.origin());
    put_u64(out, nulls.invented());
}

/// Decodes one [`NullFactory`].
pub fn take_factory(r: &mut Reader<'_>) -> DecodeResult<NullFactory> {
    let origin = r.u64()?;
    let next = r.u64()?;
    Ok(NullFactory::from_parts(origin, next))
}

// ---- firings (the WAL payloads) ----

const TAG_TF_CONST: u8 = 0;
const TAG_TF_FRESH: u8 = 1;

/// Encodes one [`TField`].
pub fn put_tfield(out: &mut Vec<u8>, f: &TField) {
    match f {
        TField::Const(v) => {
            out.push(TAG_TF_CONST);
            put_value(out, v);
        }
        TField::Fresh(id) => {
            out.push(TAG_TF_FRESH);
            put_u32(out, *id);
        }
    }
}

/// Decodes one [`TField`].
pub fn take_tfield(r: &mut Reader<'_>) -> DecodeResult<TField> {
    let at = r.offset();
    match r.byte()? {
        TAG_TF_CONST => Ok(TField::Const(take_value(r)?)),
        TAG_TF_FRESH => Ok(TField::Fresh(r.u32()?)),
        t => Err(BinDecodeError { offset: at, detail: format!("unknown template-field tag {t}") }),
    }
}

/// Encodes one [`RuleFiring`] (atoms in head order).
pub fn put_firing(out: &mut Vec<u8>, f: &RuleFiring) {
    put_len(out, f.atoms.len());
    for (rel, fields) in &f.atoms {
        put_str(out, rel);
        put_len(out, fields.len());
        for field in fields {
            put_tfield(out, field);
        }
    }
}

/// Decodes one [`RuleFiring`].
pub fn take_firing(r: &mut Reader<'_>) -> DecodeResult<RuleFiring> {
    let n = r.len(2)?;
    let mut atoms = Vec::with_capacity(n);
    for _ in 0..n {
        let rel = r.str()?;
        let nf = r.len(1)?;
        let mut fields = Vec::with_capacity(nf);
        for _ in 0..nf {
            fields.push(take_tfield(r)?);
        }
        atoms.push((rel, fields));
    }
    Ok(RuleFiring { atoms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut out = Vec::new();
            put_u64(&mut out, v);
            assert!(out.len() <= 10);
            let mut r = Reader::new(&out);
            assert_eq!(r.u64().unwrap(), v);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn zigzag_keeps_small_negatives_small() {
        let mut out = Vec::new();
        put_i64(&mut out, -1);
        assert_eq!(out.len(), 1);
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            let mut out = Vec::new();
            put_i64(&mut out, v);
            assert_eq!(Reader::new(&out).i64().unwrap(), v);
        }
    }

    #[test]
    fn values_and_tuples_round_trip() {
        let t = Tuple::new(vec![
            Value::Int(-42),
            Value::str("héllo"),
            Value::Bool(true),
            Value::Null(NullId::new(7, 9)),
        ]);
        let mut out = Vec::new();
        put_tuple(&mut out, &t);
        let mut r = Reader::new(&out);
        assert_eq!(take_tuple(&mut r).unwrap(), t);
        r.expect_end().unwrap();
    }

    #[test]
    fn instance_round_trips_and_is_deterministic() {
        let mut inst = Instance::new();
        inst.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Str]));
        inst.insert("r", tup![2, "b"]).unwrap();
        inst.insert("r", tup![1, "a"]).unwrap();
        let mut a = Vec::new();
        put_instance(&mut a, &inst);
        // A clone inserted in the opposite order encodes identically:
        // tuples are written sorted, not in HashSet order.
        let mut inst2 = Instance::new();
        inst2.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Str]));
        inst2.insert("r", tup![1, "a"]).unwrap();
        inst2.insert("r", tup![2, "b"]).unwrap();
        let mut b = Vec::new();
        put_instance(&mut b, &inst2);
        assert_eq!(a, b);
        let decoded = take_instance(&mut Reader::new(&a)).unwrap();
        assert_eq!(decoded, inst);
    }

    #[test]
    fn firing_round_trips() {
        let f = RuleFiring {
            atoms: vec![
                ("r".into(), vec![TField::Const(Value::Int(3)), TField::Fresh(0)]),
                ("s".into(), vec![TField::Fresh(0)]),
            ],
        };
        let mut out = Vec::new();
        put_firing(&mut out, &f);
        assert_eq!(take_firing(&mut Reader::new(&out)).unwrap(), f);
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let mut out = Vec::new();
        put_tuple(&mut out, &tup![1, "abc", true]);
        for cut in 0..out.len() {
            assert!(take_tuple(&mut Reader::new(&out[..cut])).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wild_length_is_rejected_before_allocation() {
        // A count claiming u64::MAX elements in a 3-byte input.
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let err = take_tuple(&mut Reader::new(&out)).unwrap_err();
        assert!(err.detail.contains("exceeds"), "{err}");
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        assert!(take_value(&mut Reader::new(&[9])).is_err());
        assert!(take_tfield(&mut Reader::new(&[9])).is_err());
        let mut r = Reader::new(&[TAG_BOOL, 2]);
        assert!(take_value(&mut r).is_err(), "boolean byte 2 rejected");
    }

    #[test]
    fn duplicate_tuple_or_relation_is_non_canonical() {
        // A relation frame claiming two copies of one tuple.
        let mut out = Vec::new();
        put_schema(&mut out, &RelationSchema::with_types("r", &[ValueType::Int]));
        put_len(&mut out, 2);
        put_tuple(&mut out, &tup![5]);
        put_tuple(&mut out, &tup![5]);
        let err = take_relation(&mut Reader::new(&out)).unwrap_err();
        assert!(err.detail.contains("duplicate tuple"), "{err}");
        // An instance carrying the same relation name twice.
        let mut inst = Instance::new();
        inst.add_relation(RelationSchema::with_types("r", &[ValueType::Int]));
        let mut out = Vec::new();
        put_len(&mut out, 2);
        put_relation(&mut out, inst.get("r").unwrap());
        put_relation(&mut out, inst.get("r").unwrap());
        let err = take_instance(&mut Reader::new(&out)).unwrap_err();
        assert!(err.detail.contains("duplicate relation"), "{err}");
    }

    #[test]
    fn ill_typed_tuple_is_corruption() {
        // Encode a relation whose tuple contradicts its schema.
        let mut out = Vec::new();
        put_schema(&mut out, &RelationSchema::with_types("r", &[ValueType::Int]));
        put_len(&mut out, 1);
        put_tuple(&mut out, &tup!["not an int"]);
        let err = take_relation(&mut Reader::new(&out)).unwrap_err();
        assert!(err.detail.contains("schema"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut out = Vec::new();
        put_value(&mut out, &Value::Bool(false));
        out.push(0xEE);
        let mut r = Reader::new(&out);
        take_value(&mut r).unwrap();
        assert!(r.expect_end().is_err());
    }
}
