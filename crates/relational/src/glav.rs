//! GLAV coordination rules and their application.
//!
//! A coordination rule is an inclusion of conjunctive queries
//! `head ⊇ body`: the *body* is a CQ (plus comparisons) over the **source**
//! node's schema; the *head* is a CQ over the **target** node's schema and
//! may contain *existential variables* — head variables that do not occur in
//! the body. Executing a rule at the source produces, per body answer, one
//! [`RuleFiring`]: the head atoms with body variables substituted and
//! existential variables left as *placeholders*. The target instantiates
//! each placeholder with a fresh marked null (one null per placeholder per
//! firing, shared across the firing's head atoms).
//!
//! **Duplicate suppression happens at the firing level.** The paper removes
//! from an incoming batch the tuples already present and *then* invents
//! fresh nulls; comparing ground tuples would never deduplicate two firings
//! that differ only in invented nulls, so the practical unit of comparison
//! is the firing template. Firing-level dedup also makes rule application
//! idempotent (retransmitted messages change nothing) and is what lets
//! cyclic rule sets reach a fixpoint: a cycle can only keep running while it
//! keeps producing *new templates*. (Rule sets that are not weakly acyclic
//! can still generate unboundedly many templates — the classical
//! non-terminating chase — which callers guard with a round cap; see
//! DESIGN.md §3.)

use crate::cq::{Atom, CqBody, CqError, Term, Var};
use crate::eval::{evaluate_body, evaluate_body_delta, Bindings, EvalError};
use crate::instance::Instance;
use crate::tuple::Tuple;
use crate::value::{NullFactory, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A GLAV coordination rule, node-agnostic (the `codb-core` crate pairs it
/// with source/target node identifiers).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlavRule {
    /// Rule name, unique per network configuration file.
    pub name: String,
    /// Head atoms over the target schema. Variables absent from the body
    /// are existential.
    pub head: Vec<Atom>,
    /// Body over the source schema.
    pub body: CqBody,
    /// Variable name table shared by head and body.
    pub var_names: Vec<String>,
}

impl GlavRule {
    /// Creates a rule, checking well-formedness: non-empty head, safe body
    /// comparisons, and named variables.
    pub fn new(
        name: impl Into<String>,
        head: Vec<Atom>,
        body: CqBody,
        var_names: Vec<String>,
    ) -> Result<Self, CqError> {
        body.check_safe()?;
        let rule = GlavRule { name: name.into(), head, body, var_names };
        let max =
            rule.head.iter().flat_map(Atom::vars).chain(rule.body.atom_vars()).map(|v| v.0).max();
        if let Some(m) = max {
            if (m as usize) >= rule.var_names.len() {
                return Err(CqError::MissingVarName(Var(m)));
            }
        }
        Ok(rule)
    }

    /// Head variables with no body occurrence — instantiated as fresh nulls.
    pub fn existential_vars(&self) -> BTreeSet<Var> {
        let bound = self.body.atom_vars();
        self.head.iter().flat_map(Atom::vars).filter(|v| !bound.contains(v)).collect()
    }

    /// True iff the rule has existential head variables (proper GLAV; rules
    /// without them are GAV-style).
    pub fn has_existentials(&self) -> bool {
        !self.existential_vars().is_empty()
    }

    /// Relations written by the rule (at the target).
    pub fn head_relations(&self) -> BTreeSet<&str> {
        self.head.iter().map(|a| a.relation.as_str()).collect()
    }

    /// Relations read by the rule (at the source).
    pub fn body_relations(&self) -> BTreeSet<&str> {
        self.body.relations()
    }

    /// Executes the rule body against `source` and returns one firing per
    /// (deduplicated) body answer.
    pub fn fire(&self, source: &Instance) -> Result<Vec<RuleFiring>, EvalError> {
        let bindings = evaluate_body(&self.body, source)?;
        Ok(self.firings_from(bindings))
    }

    /// Semi-naive variant: only firings whose derivation uses a tuple of
    /// `delta` in relation `delta_relation`.
    pub fn fire_delta(
        &self,
        source: &Instance,
        delta_relation: &str,
        delta: &[Tuple],
    ) -> Result<Vec<RuleFiring>, EvalError> {
        let bindings = evaluate_body_delta(&self.body, source, delta_relation, delta)?;
        Ok(self.firings_from(bindings))
    }

    fn firings_from(&self, bindings: Vec<Bindings>) -> Vec<RuleFiring> {
        let existentials = self.existential_vars();
        let mut set: BTreeSet<RuleFiring> = BTreeSet::new();
        for b in bindings {
            let atoms = self
                .head
                .iter()
                .map(|atom| {
                    let fields = atom
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Const(c) => TField::Const(c.clone()),
                            Term::Var(v) if existentials.contains(v) => TField::Fresh(v.0),
                            Term::Var(v) => TField::Const(
                                b[v.0 as usize].clone().expect("body var bound by evaluation"),
                            ),
                        })
                        .collect();
                    (atom.relation.clone(), fields)
                })
                .collect();
            set.insert(RuleFiring { atoms });
        }
        set.into_iter().collect()
    }
}

impl fmt::Display for GlavRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {}: ", self.name)?;
        let atom = |f: &mut fmt::Formatter<'_>, a: &Atom| -> fmt::Result {
            write!(f, "{}(", a.relation)?;
            for (i, t) in a.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match t {
                    Term::Const(c) => write!(f, "{c}")?,
                    Term::Var(v) => write!(f, "{}", self.var_names[v.0 as usize])?,
                }
            }
            write!(f, ")")
        };
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            atom(f, a)?;
        }
        write!(f, " <- ")?;
        for (i, a) in self.body.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            atom(f, a)?;
        }
        for c in &self.body.comparisons {
            write!(f, ", ")?;
            let term = |f: &mut fmt::Formatter<'_>, t: &Term| -> fmt::Result {
                match t {
                    Term::Const(v) => write!(f, "{v}"),
                    Term::Var(v) => write!(f, "{}", self.var_names[v.0 as usize]),
                }
            };
            term(f, &c.lhs)?;
            write!(f, " {} ", c.op.symbol())?;
            term(f, &c.rhs)?;
        }
        Ok(())
    }
}

/// One field of a firing template: a ground value or an existential
/// placeholder (keyed by the rule's variable index so placeholders are
/// shared across head atoms of the same firing).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TField {
    /// Ground value carried over from the body answer (or a head constant).
    Const(Value),
    /// Existential placeholder; the target invents one fresh null per
    /// distinct placeholder id per firing.
    Fresh(u32),
}

/// The wire unit of coDB data migration: one rule firing — every head atom
/// of the rule, projected through one body answer, with existential
/// placeholders unresolved.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RuleFiring {
    /// `(relation, fields)` per head atom, in rule head order.
    pub atoms: Vec<(String, Vec<TField>)>,
}

impl RuleFiring {
    /// Instantiates the firing at the target: each distinct placeholder gets
    /// one fresh marked null. Returns `(relation, tuple)` pairs.
    pub fn instantiate(&self, nulls: &mut NullFactory) -> Vec<(String, Tuple)> {
        let mut invented: BTreeMap<u32, Value> = BTreeMap::new();
        self.atoms
            .iter()
            .map(|(rel, fields)| {
                let values = fields
                    .iter()
                    .map(|f| match f {
                        TField::Const(v) => v.clone(),
                        TField::Fresh(id) => invented
                            .entry(*id)
                            .or_insert_with(|| Value::Null(nulls.fresh()))
                            .clone(),
                    })
                    .collect::<Vec<_>>();
                (rel.clone(), Tuple::new(values))
            })
            .collect()
    }

    /// True iff the firing carries no existential placeholder.
    pub fn is_ground(&self) -> bool {
        self.atoms.iter().all(|(_, fs)| fs.iter().all(|f| matches!(f, TField::Const(_))))
    }

    /// Approximate wire size in bytes (statistics accounting).
    pub fn size_bytes(&self) -> usize {
        self.atoms
            .iter()
            .map(|(rel, fs)| {
                rel.len()
                    + 2
                    + fs.iter()
                        .map(|f| match f {
                            TField::Const(v) => v.size_bytes(),
                            TField::Fresh(_) => 4,
                        })
                        .sum::<usize>()
            })
            .sum()
    }
}

/// Applies a batch of firings to `target`: instantiates each firing (fresh
/// nulls from `nulls`), inserts the resulting tuples, and returns the
/// per-relation deltas (tuples that were actually new).
///
/// The caller is responsible for firing-level dedup (per-link caches); this
/// function still suppresses ground duplicates via set semantics.
pub fn apply_firings(
    target: &mut Instance,
    firings: &[RuleFiring],
    nulls: &mut NullFactory,
) -> Result<BTreeMap<String, Vec<Tuple>>, crate::schema::SchemaError> {
    let mut deltas: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
    for firing in firings {
        for (rel, tuple) in firing.instantiate(nulls) {
            if target
                .get_mut(&rel)
                .ok_or_else(|| crate::schema::SchemaError::UnknownRelation {
                    relation: rel.clone(),
                })?
                .insert(tuple.clone())?
            {
                deltas.entry(rel).or_default().push(tuple);
            }
        }
    }
    Ok(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{CmpOp, Comparison};
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::ValueType;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    fn src() -> Instance {
        let mut i = Instance::new();
        i.add_relation(RelationSchema::with_types("emp", &[ValueType::Str, ValueType::Int]));
        i.insert("emp", tup!["alice", 30]).unwrap();
        i.insert("emp", tup!["bob", 17]).unwrap();
        i
    }

    fn gav_rule() -> GlavRule {
        // person(N, A) <- emp(N, A), A >= 18
        GlavRule::new(
            "r1",
            vec![Atom::new("person", vec![v(0), v(1)])],
            CqBody::new(
                vec![Atom::new("emp", vec![v(0), v(1)])],
                vec![Comparison::new(Var(1), CmpOp::Ge, Value::Int(18))],
            ),
            vec!["N".into(), "A".into()],
        )
        .unwrap()
    }

    fn glav_rule() -> GlavRule {
        // person(N, D), dept(D) <- emp(N, A)   -- D existential, shared
        GlavRule::new(
            "r2",
            vec![Atom::new("person", vec![v(0), v(2)]), Atom::new("dept", vec![v(2)])],
            CqBody::new(vec![Atom::new("emp", vec![v(0), v(1)])], vec![]),
            vec!["N".into(), "A".into(), "D".into()],
        )
        .unwrap()
    }

    #[test]
    fn existential_detection() {
        assert!(gav_rule().existential_vars().is_empty());
        assert!(!gav_rule().has_existentials());
        assert_eq!(glav_rule().existential_vars(), [Var(2)].into_iter().collect());
        assert!(glav_rule().has_existentials());
    }

    #[test]
    fn fire_gav_produces_ground_firings() {
        let firings = gav_rule().fire(&src()).unwrap();
        assert_eq!(firings.len(), 1); // bob filtered by comparison
        assert!(firings[0].is_ground());
        assert_eq!(
            firings[0].atoms[0].1,
            vec![TField::Const(Value::str("alice")), TField::Const(Value::Int(30))]
        );
    }

    #[test]
    fn fire_glav_shares_placeholder_across_head_atoms() {
        let firings = glav_rule().fire(&src()).unwrap();
        assert_eq!(firings.len(), 2);
        for f in &firings {
            assert!(!f.is_ground());
            let (_, person_fields) = &f.atoms[0];
            let (_, dept_fields) = &f.atoms[1];
            assert_eq!(person_fields[1], TField::Fresh(2));
            assert_eq!(dept_fields[0], TField::Fresh(2));
        }
    }

    #[test]
    fn instantiate_invents_one_null_per_placeholder() {
        let firings = glav_rule().fire(&src()).unwrap();
        let mut nulls = NullFactory::new(1);
        let pairs = firings[0].instantiate(&mut nulls);
        assert_eq!(pairs.len(), 2);
        let pv = &pairs[0].1[1];
        let dv = &pairs[1].1[0];
        assert!(pv.is_null());
        assert_eq!(pv, dv, "placeholder shared within a firing");
        // A second firing invents a different null.
        let pairs2 = firings[1].instantiate(&mut nulls);
        assert_ne!(pairs2[0].1[1], *pv);
    }

    #[test]
    fn firings_are_deduplicated() {
        let mut i = src();
        // A second emp tuple with the same name, different age: the GAV rule
        // projects both columns so firings differ; but a projection rule
        // dedups.
        i.insert("emp", tup!["alice", 31]).unwrap();
        let proj = GlavRule::new(
            "p",
            vec![Atom::new("names", vec![v(0)])],
            CqBody::new(vec![Atom::new("emp", vec![v(0), v(1)])], vec![]),
            vec!["N".into(), "A".into()],
        )
        .unwrap();
        let firings = proj.fire(&i).unwrap();
        assert_eq!(firings.len(), 2); // alice, bob — not 3
    }

    #[test]
    fn fire_delta_limits_to_new_tuples() {
        let mut i = src();
        let delta = vec![tup!["carol", 50]];
        i.insert("emp", delta[0].clone()).unwrap();
        let firings = gav_rule().fire_delta(&i, "emp", &delta).unwrap();
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].atoms[0].1[0], TField::Const(Value::str("carol")));
    }

    #[test]
    fn apply_firings_returns_deltas_and_dedups() {
        let mut target = Instance::new();
        target
            .add_relation(RelationSchema::with_types("person", &[ValueType::Str, ValueType::Int]));
        let firings = gav_rule().fire(&src()).unwrap();
        let mut nulls = NullFactory::new(2);
        let d1 = apply_firings(&mut target, &firings, &mut nulls).unwrap();
        assert_eq!(d1["person"].len(), 1);
        // Re-applying the same ground firing adds nothing.
        let d2 = apply_firings(&mut target, &firings, &mut nulls).unwrap();
        assert!(d2.is_empty());
    }

    #[test]
    fn apply_firings_unknown_relation_errors() {
        let mut target = Instance::new();
        let firings = gav_rule().fire(&src()).unwrap();
        let mut nulls = NullFactory::new(2);
        assert!(apply_firings(&mut target, &firings, &mut nulls).is_err());
    }

    #[test]
    fn display_round_trips_shape() {
        let s = gav_rule().to_string();
        assert_eq!(s, "rule r1: person(N, A) <- emp(N, A), A >= 18");
        let s2 = glav_rule().to_string();
        assert_eq!(s2, "rule r2: person(N, D), dept(D) <- emp(N, A)");
    }

    #[test]
    fn head_and_body_relations() {
        let r = glav_rule();
        assert_eq!(r.head_relations(), ["person", "dept"].into_iter().collect());
        assert_eq!(r.body_relations(), ["emp"].into_iter().collect());
    }

    #[test]
    fn unsafe_body_comparison_rejected() {
        let bad = GlavRule::new(
            "bad",
            vec![Atom::new("t", vec![v(0)])],
            CqBody::new(
                vec![Atom::new("emp", vec![v(0), v(1)])],
                vec![Comparison::new(Var(5), CmpOp::Eq, Value::Int(1))],
            ),
            vec!["N".into(), "A".into()],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn firing_size_accounts_fields() {
        let firings = glav_rule().fire(&src()).unwrap();
        assert!(firings[0].size_bytes() > 0);
    }
}
