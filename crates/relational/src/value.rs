//! Typed values, including the *marked nulls* ("labelled nulls") that coDB
//! uses to instantiate existential variables in GLAV rule heads.
//!
//! Marked nulls follow the data-exchange semantics of Fagin et al. (ICDT
//! 2003), which the coDB paper adopts: a null is a named unknown. Two nulls
//! are equal (and join) only if they carry the same label; a null never
//! equals a constant. [`NullId`] records the node that invented the null and
//! a per-node sequence number, so labels are globally unique without any
//! coordination — mirroring how coDB relies on JXTA-generated identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a marked null: the inventing node plus a local sequence
/// number. Globally unique as long as node identifiers are unique.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NullId {
    /// Raw identifier of the node that invented this null.
    pub origin: u64,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl NullId {
    /// Creates a null identifier.
    pub fn new(origin: u64, seq: u64) -> Self {
        NullId { origin, seq }
    }
}

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}:{}", self.origin, self.seq)
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}:{}", self.origin, self.seq)
    }
}

/// Factory handing out fresh marked nulls on behalf of one node.
///
/// Each call to [`NullFactory::fresh`] returns a null never produced before
/// by this factory. coDB invents one fresh null per existential variable per
/// rule-body answer, so factories are consulted on every rule application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NullFactory {
    origin: u64,
    next: u64,
}

impl NullFactory {
    /// Creates a factory for the node with raw id `origin`.
    pub fn new(origin: u64) -> Self {
        NullFactory { origin, next: 0 }
    }

    /// Restores a factory from its persisted parts: the owning node's raw
    /// id and the number of nulls already handed out. This is the decode
    /// hook of the binary snapshot codec — restoring with a too-small
    /// `next` would re-issue labels that already occur in the data,
    /// silently merging distinct unknowns.
    pub fn from_parts(origin: u64, next: u64) -> Self {
        NullFactory { origin, next }
    }

    /// Returns a fresh, never-before-seen marked null.
    pub fn fresh(&mut self) -> NullId {
        let id = NullId::new(self.origin, self.next);
        self.next += 1;
        id
    }

    /// Raw id of the node this factory invents nulls for.
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// Number of nulls handed out so far.
    pub fn invented(&self) -> u64 {
        self.next
    }
}

/// A database value.
///
/// The variants cover what the coDB demo schemas need: integers, strings,
/// booleans and marked nulls. Floats are deliberately omitted so that
/// [`Value`] has total equality/ordering and can live in hash sets —
/// the same choice most Datalog engines make.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// A marked (labelled) null standing for an unknown value invented for
    /// an existential variable. Joins only with itself.
    Null(NullId),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// True iff this value is a marked null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// The runtime type of this value, or `None` for nulls (which inhabit
    /// every column type).
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Int(_) => Some(ValueType::Int),
            Value::Str(_) => Some(ValueType::Str),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Null(_) => None,
        }
    }

    /// Approximate wire size in bytes, used by the network simulator for
    /// bandwidth accounting (the paper's statistics module reports "the
    /// volume of the data in each message").
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Str(s) => s.len() + 4,
            Value::Bool(_) => 1,
            Value::Null(_) => 16,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<NullId> for Value {
    fn from(v: NullId) -> Self {
        Value::Null(v)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

/// Column types for schema validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "int"),
            ValueType::Str => write!(f, "str"),
            ValueType::Bool => write!(f, "bool"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_factory_is_monotone_and_unique() {
        let mut f = NullFactory::new(7);
        let a = f.fresh();
        let b = f.fresh();
        assert_ne!(a, b);
        assert_eq!(a.origin, 7);
        assert_eq!(b.seq, a.seq + 1);
        assert_eq!(f.invented(), 2);
    }

    #[test]
    fn nulls_from_different_origins_differ() {
        let a = NullFactory::new(1).fresh();
        let b = NullFactory::new(2).fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn null_equality_is_label_based() {
        let n = NullId::new(3, 4);
        assert_eq!(Value::Null(n), Value::Null(NullId::new(3, 4)));
        assert_ne!(Value::Null(n), Value::Null(NullId::new(3, 5)));
        assert_ne!(Value::Null(n), Value::Int(0));
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
        assert_eq!(Value::str("x").value_type(), Some(ValueType::Str));
        assert_eq!(Value::Bool(true).value_type(), Some(ValueType::Bool));
        assert_eq!(Value::Null(NullId::new(0, 0)).value_type(), None);
    }

    #[test]
    fn value_ordering_is_total() {
        let mut vs = [
            Value::str("b"),
            Value::Int(2),
            Value::Bool(false),
            Value::Null(NullId::new(0, 1)),
            Value::Int(-5),
            Value::str("a"),
        ];
        vs.sort();
        // Int < Str < Bool < Null per variant declaration order.
        assert_eq!(vs[0], Value::Int(-5));
        assert_eq!(vs[1], Value::Int(2));
        assert_eq!(vs[2], Value::str("a"));
        assert_eq!(vs[3], Value::str("b"));
    }

    #[test]
    fn size_bytes_reflects_payload() {
        assert_eq!(Value::Int(0).size_bytes(), 8);
        assert_eq!(Value::str("abcd").size_bytes(), 8);
        assert_eq!(Value::Bool(true).size_bytes(), 1);
        assert_eq!(Value::Null(NullId::new(0, 0)).size_bytes(), 16);
    }

    #[test]
    fn display_round_trip_is_stable() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Null(NullId::new(1, 2)).to_string(), "#1:2");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
