//! Relation and database schemas.
//!
//! In coDB every node exposes a *Database Schema* (DBS) describing the part
//! of its local database that is shared with the network; a node without a
//! local database (a pure mediator) still publishes a DBS. We model the DBS
//! as a set of named, typed relation schemas.

use crate::tuple::Tuple;
use crate::value::ValueType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A typed column.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (informational; positions are what the engine uses).
    pub name: String,
    /// Column type. Marked nulls are admitted in every column.
    pub ty: ValueType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// Schema of one relation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSchema {
    /// Relation name, unique within a [`DatabaseSchema`].
    pub name: String,
    /// Ordered columns.
    pub columns: Vec<Column>,
}

impl RelationSchema {
    /// Creates a schema from a name and columns.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        RelationSchema { name: name.into(), columns }
    }

    /// Shorthand: all columns typed, names auto-generated (`c0`, `c1`, ...).
    pub fn with_types(name: impl Into<String>, types: &[ValueType]) -> Self {
        let columns =
            types.iter().enumerate().map(|(i, ty)| Column::new(format!("c{i}"), *ty)).collect();
        RelationSchema::new(name, columns)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Checks a tuple against this schema: right arity, every non-null field
    /// of the column's type.
    pub fn validate(&self, tuple: &Tuple) -> Result<(), SchemaError> {
        if tuple.arity() != self.arity() {
            return Err(SchemaError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity(),
                got: tuple.arity(),
            });
        }
        for (i, v) in tuple.values().enumerate() {
            if let Some(t) = v.value_type() {
                if t != self.columns[i].ty {
                    return Err(SchemaError::TypeMismatch {
                        relation: self.name.clone(),
                        column: i,
                        expected: self.columns[i].ty,
                        got: t,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Schema of a node's shared database: a set of relation schemas.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseSchema {
    relations: BTreeMap<String, RelationSchema>,
}

impl DatabaseSchema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a relation schema.
    pub fn add(&mut self, schema: RelationSchema) -> &mut Self {
        self.relations.insert(schema.name.clone(), schema);
        self
    }

    /// Builder-style [`DatabaseSchema::add`].
    pub fn with(mut self, schema: RelationSchema) -> Self {
        self.add(schema);
        self
    }

    /// Looks up a relation schema by name.
    pub fn get(&self, name: &str) -> Option<&RelationSchema> {
        self.relations.get(name)
    }

    /// True iff the schema declares `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterates over relation schemas in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

/// Schema violations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    /// Tuple arity differs from the declared arity.
    ArityMismatch {
        /// Relation whose schema was violated.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A field has the wrong type.
    TypeMismatch {
        /// Relation whose schema was violated.
        relation: String,
        /// Zero-based column index.
        column: usize,
        /// Declared column type.
        expected: ValueType,
        /// Actual value type.
        got: ValueType,
    },
    /// Reference to an undeclared relation.
    UnknownRelation {
        /// The missing relation name.
        relation: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::ArityMismatch { relation, expected, got } => {
                write!(f, "relation {relation}: arity mismatch, expected {expected}, got {got}")
            }
            SchemaError::TypeMismatch { relation, column, expected, got } => {
                write!(f, "relation {relation}: column {column} expects {expected}, got {got}")
            }
            SchemaError::UnknownRelation { relation } => {
                write!(f, "unknown relation {relation}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::value::NullId;
    use crate::Value;

    fn person() -> RelationSchema {
        RelationSchema::new(
            "person",
            vec![Column::new("name", ValueType::Str), Column::new("age", ValueType::Int)],
        )
    }

    #[test]
    fn validate_accepts_well_typed_tuples() {
        assert_eq!(person().validate(&tup!["alice", 30]), Ok(()));
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let err = person().validate(&tup!["alice"]).unwrap_err();
        assert!(matches!(err, SchemaError::ArityMismatch { expected: 2, got: 1, .. }));
    }

    #[test]
    fn validate_rejects_wrong_type() {
        let err = person().validate(&tup![30, "alice"]).unwrap_err();
        assert!(matches!(
            err,
            SchemaError::TypeMismatch { column: 0, expected: ValueType::Str, .. }
        ));
    }

    #[test]
    fn nulls_fit_any_column() {
        let t = Tuple::new(vec![Value::Null(NullId::new(0, 0)), Value::Int(1)]);
        assert_eq!(person().validate(&t), Ok(()));
    }

    #[test]
    fn with_types_generates_column_names() {
        let s = RelationSchema::with_types("r", &[ValueType::Int, ValueType::Str]);
        assert_eq!(s.columns[0].name, "c0");
        assert_eq!(s.columns[1].name, "c1");
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn database_schema_lookup() {
        let db = DatabaseSchema::new().with(person());
        assert!(db.contains("person"));
        assert!(!db.contains("employee"));
        assert_eq!(db.get("person").unwrap().arity(), 2);
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn add_replaces_existing() {
        let mut db = DatabaseSchema::new();
        db.add(person());
        db.add(RelationSchema::with_types("person", &[ValueType::Int]));
        assert_eq!(db.get("person").unwrap().arity(), 1);
        assert_eq!(db.len(), 1);
    }
}
