//! Relational-algebra operators over [`Relation`]s.
//!
//! The paper's Wrapper "executes input database manipulation operations …
//! all required database operations (as join and project) are executed in
//! Wrapper" when the LDB cannot. These operators are that Wrapper surface:
//! selection, projection, natural join, union, difference and renaming,
//! each deriving the result schema from its inputs.

use crate::cq::CmpOp;
use crate::relation::Relation;
use crate::schema::{Column, RelationSchema, SchemaError};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Errors raised by algebra operators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgebraError {
    /// A column index is out of range.
    ColumnOutOfRange {
        /// The offending index.
        column: usize,
        /// The relation's arity.
        arity: usize,
    },
    /// Union/difference operands have incompatible schemas.
    SchemaMismatch,
    /// A result tuple violated the derived schema (internal invariant).
    Schema(SchemaError),
}

impl std::fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgebraError::ColumnOutOfRange { column, arity } => {
                write!(f, "column {column} out of range for arity {arity}")
            }
            AlgebraError::SchemaMismatch => write!(f, "operand schemas are incompatible"),
            AlgebraError::Schema(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

impl From<SchemaError> for AlgebraError {
    fn from(e: SchemaError) -> Self {
        AlgebraError::Schema(e)
    }
}

fn check_col(rel: &Relation, column: usize) -> Result<(), AlgebraError> {
    if column >= rel.arity() {
        Err(AlgebraError::ColumnOutOfRange { column, arity: rel.arity() })
    } else {
        Ok(())
    }
}

/// σ — keeps the tuples whose `column` satisfies `op` against `value`
/// (marked-null comparison semantics of [`CmpOp::eval`]).
pub fn select(
    rel: &Relation,
    column: usize,
    op: CmpOp,
    value: &Value,
) -> Result<Relation, AlgebraError> {
    check_col(rel, column)?;
    let mut out = Relation::new(rel.schema().clone());
    for t in rel.iter() {
        if op.eval(&t[column], value) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// σ with an arbitrary predicate.
pub fn select_where(
    rel: &Relation,
    name: impl Into<String>,
    pred: impl Fn(&Tuple) -> bool,
) -> Relation {
    let mut schema = rel.schema().clone();
    schema.name = name.into();
    let mut out = Relation::new(schema);
    for t in rel.iter() {
        if pred(t) {
            out.insert(t.clone()).expect("same schema");
        }
    }
    out
}

/// π — projects onto `columns` (in the given order; duplicates allowed),
/// with set semantics on the result.
pub fn project(
    rel: &Relation,
    name: impl Into<String>,
    columns: &[usize],
) -> Result<Relation, AlgebraError> {
    for &c in columns {
        check_col(rel, c)?;
    }
    let cols = columns.iter().map(|&c| rel.schema().columns[c].clone()).collect::<Vec<_>>();
    let mut out = Relation::new(RelationSchema::new(name, cols));
    for t in rel.iter() {
        let values = columns.iter().map(|&c| t[c].clone()).collect::<Vec<_>>();
        out.insert(Tuple::new(values))?;
    }
    Ok(out)
}

/// ⋈ — equi-join on `left.column == right.column` pairs; the result
/// concatenates the left tuple with the right tuple minus its join columns
/// (natural-join column elimination). Hash join on the first pair.
pub fn join(
    left: &Relation,
    right: &Relation,
    name: impl Into<String>,
    on: &[(usize, usize)],
) -> Result<Relation, AlgebraError> {
    assert!(!on.is_empty(), "join requires at least one column pair");
    for &(l, r) in on {
        check_col(left, l)?;
        check_col(right, r)?;
    }
    let right_join_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let mut cols = left.schema().columns.clone();
    for (i, c) in right.schema().columns.iter().enumerate() {
        if !right_join_cols.contains(&i) {
            cols.push(Column::new(format!("{}_{}", right.name(), c.name), c.ty));
        }
    }
    let mut out = Relation::new(RelationSchema::new(name, cols));

    // Hash the right side on its first join column.
    let (l0, r0) = on[0];
    let mut index: HashMap<&Value, Vec<&Tuple>> = HashMap::new();
    for t in right.iter() {
        index.entry(&t[r0]).or_default().push(t);
    }
    for lt in left.iter() {
        let Some(candidates) = index.get(&lt[l0]) else { continue };
        'cand: for rt in candidates {
            for &(l, r) in &on[1..] {
                if lt[l] != rt[r] {
                    continue 'cand;
                }
            }
            let mut values: Vec<Value> = lt.values().cloned().collect();
            for (i, v) in rt.values().enumerate() {
                if !right_join_cols.contains(&i) {
                    values.push(v.clone());
                }
            }
            out.insert(Tuple::new(values))?;
        }
    }
    Ok(out)
}

fn compatible(a: &Relation, b: &Relation) -> Result<(), AlgebraError> {
    let ta: Vec<_> = a.schema().columns.iter().map(|c| c.ty).collect();
    let tb: Vec<_> = b.schema().columns.iter().map(|c| c.ty).collect();
    if ta == tb {
        Ok(())
    } else {
        Err(AlgebraError::SchemaMismatch)
    }
}

/// ∪ — set union (operands must have identical column types).
pub fn union(a: &Relation, b: &Relation) -> Result<Relation, AlgebraError> {
    compatible(a, b)?;
    let mut out = a.clone();
    for t in b.iter() {
        out.insert(t.clone())?;
    }
    Ok(out)
}

/// \ — set difference `a \ b`.
pub fn difference(a: &Relation, b: &Relation) -> Result<Relation, AlgebraError> {
    compatible(a, b)?;
    let mut out = Relation::new(a.schema().clone());
    for t in a.iter() {
        if !b.contains(t) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// ρ — renames the relation (and optionally its columns).
pub fn rename(
    rel: &Relation,
    name: impl Into<String>,
    columns: Option<Vec<String>>,
) -> Result<Relation, AlgebraError> {
    let mut schema = rel.schema().clone();
    schema.name = name.into();
    if let Some(names) = columns {
        if names.len() != schema.arity() {
            return Err(AlgebraError::SchemaMismatch);
        }
        for (c, n) in schema.columns.iter_mut().zip(names) {
            c.name = n;
        }
    }
    let mut out = Relation::new(schema);
    for t in rel.iter() {
        out.insert(t.clone())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::ValueType;

    fn emp() -> Relation {
        let mut r = Relation::new(RelationSchema::new(
            "emp",
            vec![Column::new("name", ValueType::Str), Column::new("age", ValueType::Int)],
        ));
        r.insert(tup!["alice", 30]).unwrap();
        r.insert(tup!["bob", 17]).unwrap();
        r.insert(tup!["carol", 45]).unwrap();
        r
    }

    fn dept() -> Relation {
        let mut r = Relation::new(RelationSchema::new(
            "dept",
            vec![Column::new("emp", ValueType::Str), Column::new("dept", ValueType::Str)],
        ));
        r.insert(tup!["alice", "db"]).unwrap();
        r.insert(tup!["carol", "os"]).unwrap();
        r.insert(tup!["dave", "db"]).unwrap();
        r
    }

    #[test]
    fn select_filters_by_comparison() {
        let adults = select(&emp(), 1, CmpOp::Ge, &Value::Int(18)).unwrap();
        assert_eq!(adults.len(), 2);
        assert!(adults.contains(&tup!["alice", 30]));
    }

    #[test]
    fn select_where_arbitrary_predicate() {
        let r =
            select_where(&emp(), "longnames", |t| matches!(&t[0], Value::Str(s) if s.len() > 3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.name(), "longnames");
    }

    #[test]
    fn select_rejects_bad_column() {
        assert_eq!(
            select(&emp(), 9, CmpOp::Eq, &Value::Int(0)).unwrap_err(),
            AlgebraError::ColumnOutOfRange { column: 9, arity: 2 }
        );
    }

    #[test]
    fn project_dedups() {
        let names = project(&dept(), "depts", &[1]).unwrap();
        assert_eq!(names.len(), 2); // db, os
        assert_eq!(names.schema().columns[0].name, "dept");
    }

    #[test]
    fn project_can_reorder_and_duplicate() {
        let r = project(&emp(), "x", &[1, 0, 1]).unwrap();
        assert!(r.contains(&tup![30, "alice", 30]));
        assert_eq!(r.arity(), 3);
    }

    #[test]
    fn join_matches_on_key() {
        let j = join(&emp(), &dept(), "emp_dept", &[(0, 0)]).unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.contains(&tup!["alice", 30, "db"]));
        assert!(j.contains(&tup!["carol", 45, "os"]));
        assert_eq!(j.arity(), 3);
        assert_eq!(j.schema().columns[2].name, "dept_dept");
    }

    #[test]
    fn join_on_multiple_columns() {
        let mut a =
            Relation::new(RelationSchema::with_types("a", &[ValueType::Int, ValueType::Int]));
        a.insert(tup![1, 2]).unwrap();
        a.insert(tup![1, 3]).unwrap();
        let mut b =
            Relation::new(RelationSchema::with_types("b", &[ValueType::Int, ValueType::Int]));
        b.insert(tup![1, 2]).unwrap();
        let j = join(&a, &b, "j", &[(0, 0), (1, 1)]).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.contains(&tup![1, 2]));
    }

    #[test]
    fn union_and_difference() {
        let a = emp();
        let adults = select(&a, 1, CmpOp::Ge, &Value::Int(18)).unwrap();
        let minors = difference(&a, &adults).unwrap();
        assert_eq!(minors.len(), 1);
        assert!(minors.contains(&tup!["bob", 17]));
        let back = union(&adults, &minors).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn union_rejects_mismatched_schemas() {
        assert_eq!(union(&emp(), &dept()).unwrap_err(), AlgebraError::SchemaMismatch);
    }

    #[test]
    fn rename_relabels() {
        let r = rename(&emp(), "people", Some(vec!["n".into(), "a".into()])).unwrap();
        assert_eq!(r.name(), "people");
        assert_eq!(r.schema().columns[0].name, "n");
        assert_eq!(r.len(), 3);
        assert!(rename(&emp(), "x", Some(vec!["only_one".into()])).is_err());
    }

    #[test]
    fn nulls_join_only_with_themselves() {
        use crate::value::NullFactory;
        let mut f = NullFactory::new(1);
        let n1 = Value::Null(f.fresh());
        let n2 = Value::Null(f.fresh());
        let mut a = Relation::new(RelationSchema::with_types("a", &[ValueType::Int]));
        let mut b = Relation::new(RelationSchema::with_types("b", &[ValueType::Int]));
        a.insert(Tuple::new(vec![n1.clone()])).unwrap();
        b.insert(Tuple::new(vec![n1.clone()])).unwrap();
        b.insert(Tuple::new(vec![n2])).unwrap();
        let j = join(&a, &b, "j", &[(0, 0)]).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.contains(&Tuple::new(vec![n1])));
    }
}
