//! Conjunctive queries with comparison predicates.
//!
//! coDB coordination rules are *inclusions of conjunctive queries* (GLAV):
//! the body is a CQ over the acquaintance's schema, possibly extended with
//! comparison predicates "which specify constraints over the domain of
//! particular attributes", and the head is a CQ over the local schema,
//! possibly with existential variables. User queries are plain CQs over one
//! node's schema. This module defines the shared AST.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A query variable, identified by index into the owning query's name table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// Variable occurrence.
    Var(Var),
    /// Constant occurrence.
    Const(Value),
}

impl Term {
    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

/// A relational atom `r(t1, ..., tk)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom { relation: relation.into(), terms }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Set of variables occurring in the atom.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }
}

/// Comparison operators admitted in rule bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality (marked nulls equal only themselves).
    Eq,
    /// Structural inequality.
    Ne,
    /// Strictly less (same-typed non-null operands only).
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on two values.
    ///
    /// Semantics: `Eq`/`Ne` are structural (a marked null is equal exactly
    /// to itself). The ordered operators are defined only between two
    /// non-null values of the same type and evaluate to `false` otherwise —
    /// a three-valued "unknown" collapsed to `false`, the conservative
    /// choice for data migration.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let comparable = !a.is_null() && !b.is_null() && a.value_type() == b.value_type();
                if !comparable {
                    return false;
                }
                match self {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Source-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A comparison predicate `lhs op rhs`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Comparison {
    /// Left operand.
    pub lhs: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Term,
}

impl Comparison {
    /// Creates a comparison.
    pub fn new(lhs: impl Into<Term>, op: CmpOp, rhs: impl Into<Term>) -> Self {
        Comparison { lhs: lhs.into(), op, rhs: rhs.into() }
    }

    /// Variables used by the comparison.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.lhs.as_var().into_iter().chain(self.rhs.as_var()).collect()
    }
}

/// The body of a CQ: relational atoms plus comparison predicates.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CqBody {
    /// Relational atoms, joined conjunctively.
    pub atoms: Vec<Atom>,
    /// Comparison predicates over body variables.
    pub comparisons: Vec<Comparison>,
}

impl CqBody {
    /// Creates a body.
    pub fn new(atoms: Vec<Atom>, comparisons: Vec<Comparison>) -> Self {
        CqBody { atoms, comparisons }
    }

    /// Variables occurring in relational atoms.
    pub fn atom_vars(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// Relation names referenced by the body.
    pub fn relations(&self) -> BTreeSet<&str> {
        self.atoms.iter().map(|a| a.relation.as_str()).collect()
    }

    /// Checks *range restriction*: every comparison variable must occur in
    /// some relational atom (otherwise evaluation would be unsafe).
    pub fn check_safe(&self) -> Result<(), CqError> {
        let bound = self.atom_vars();
        for c in &self.comparisons {
            for v in c.vars() {
                if !bound.contains(&v) {
                    return Err(CqError::UnsafeComparisonVar(v));
                }
            }
        }
        Ok(())
    }
}

/// A conjunctive query `head(x̄) :- body`, used for user queries.
///
/// User queries must be *safe*: every head variable occurs in the body.
/// (Rule heads with existential variables are modelled by
/// [`crate::glav::GlavRule`], not by this type.)
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// The head atom; its relation name names the answer relation.
    pub head: Atom,
    /// The body.
    pub body: CqBody,
    /// Human-readable names for variables, indexed by [`Var`].
    pub var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Creates a query, checking safety and range restriction.
    pub fn new(head: Atom, body: CqBody, var_names: Vec<String>) -> Result<Self, CqError> {
        body.check_safe()?;
        let bound = body.atom_vars();
        for v in head.vars() {
            if !bound.contains(&v) {
                return Err(CqError::UnsafeHeadVar(v));
            }
        }
        let q = ConjunctiveQuery { head, body, var_names };
        q.check_var_names()?;
        Ok(q)
    }

    fn check_var_names(&self) -> Result<(), CqError> {
        let max = self.head.vars().into_iter().chain(self.body.atom_vars()).map(|v| v.0).max();
        if let Some(m) = max {
            if (m as usize) >= self.var_names.len() {
                return Err(CqError::MissingVarName(Var(m)));
            }
        }
        Ok(())
    }

    /// Display name for a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.0 as usize]
    }
}

/// Well-formedness errors for CQs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CqError {
    /// A head variable does not occur in the body.
    UnsafeHeadVar(Var),
    /// A comparison variable does not occur in any relational atom.
    UnsafeComparisonVar(Var),
    /// A variable lacks an entry in the name table.
    MissingVarName(Var),
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::UnsafeHeadVar(v) => write!(f, "head variable {v:?} not bound in body"),
            CqError::UnsafeComparisonVar(v) => {
                write!(f, "comparison variable {v:?} not bound in any atom")
            }
            CqError::MissingVarName(v) => write!(f, "no name recorded for variable {v:?}"),
        }
    }
}

impl std::error::Error for CqError {}

/// Helper for building queries programmatically: interns variable names.
#[derive(Debug, Default)]
pub struct VarPool {
    names: Vec<String>,
}

impl VarPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the variable for `name`, interning it on first use.
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            Var(i as u32)
        } else {
            self.names.push(name.to_owned());
            Var((self.names.len() - 1) as u32)
        }
    }

    /// Consumes the pool, yielding the name table.
    pub fn into_names(self) -> Vec<String> {
        self.names
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no variables are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NullId;

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn cmp_eval_ordered() {
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(!CmpOp::Lt.eval(&Value::Int(2), &Value::Int(1)));
        assert!(CmpOp::Ge.eval(&Value::str("b"), &Value::str("a")));
        assert!(CmpOp::Le.eval(&Value::Int(1), &Value::Int(1)));
    }

    #[test]
    fn cmp_ordered_rejects_mixed_types_and_nulls() {
        let null = Value::Null(NullId::new(0, 0));
        assert!(!CmpOp::Lt.eval(&Value::Int(1), &Value::str("x")));
        assert!(!CmpOp::Gt.eval(&null, &Value::Int(1)));
        assert!(!CmpOp::Le.eval(&null, &null));
    }

    #[test]
    fn cmp_eq_is_label_based_for_nulls() {
        let n = Value::Null(NullId::new(0, 0));
        let m = Value::Null(NullId::new(0, 1));
        assert!(CmpOp::Eq.eval(&n, &n.clone()));
        assert!(CmpOp::Ne.eval(&n, &m));
        assert!(CmpOp::Ne.eval(&n, &Value::Int(1)));
    }

    #[test]
    fn atom_vars_dedup() {
        let a = Atom::new("r", vec![v(0), v(1), v(0), Term::Const(Value::Int(3))]);
        assert_eq!(a.vars(), [Var(0), Var(1)].into_iter().collect());
        assert_eq!(a.arity(), 4);
    }

    #[test]
    fn safe_query_accepted() {
        let body = CqBody::new(
            vec![Atom::new("r", vec![v(0), v(1)])],
            vec![Comparison::new(Var(1), CmpOp::Gt, Value::Int(5))],
        );
        let q =
            ConjunctiveQuery::new(Atom::new("ans", vec![v(0)]), body, vec!["X".into(), "Y".into()]);
        assert!(q.is_ok());
        assert_eq!(q.unwrap().var_name(Var(1)), "Y");
    }

    #[test]
    fn unsafe_head_var_rejected() {
        let body = CqBody::new(vec![Atom::new("r", vec![v(0)])], vec![]);
        let err = ConjunctiveQuery::new(Atom::new("ans", vec![v(0), v(7)]), body, vec!["X".into()])
            .unwrap_err();
        assert_eq!(err, CqError::UnsafeHeadVar(Var(7)));
    }

    #[test]
    fn unsafe_comparison_var_rejected() {
        let body = CqBody::new(
            vec![Atom::new("r", vec![v(0)])],
            vec![Comparison::new(Var(3), CmpOp::Eq, Value::Int(1))],
        );
        assert_eq!(body.check_safe(), Err(CqError::UnsafeComparisonVar(Var(3))));
    }

    #[test]
    fn missing_var_name_rejected() {
        let body = CqBody::new(vec![Atom::new("r", vec![v(0), v(1)])], vec![]);
        let err = ConjunctiveQuery::new(Atom::new("ans", vec![v(0)]), body, vec!["X".into()])
            .unwrap_err();
        assert_eq!(err, CqError::MissingVarName(Var(1)));
    }

    #[test]
    fn var_pool_interns() {
        let mut p = VarPool::new();
        let x = p.var("X");
        let y = p.var("Y");
        assert_ne!(x, y);
        assert_eq!(p.var("X"), x);
        assert_eq!(p.len(), 2);
        assert_eq!(p.into_names(), vec!["X".to_owned(), "Y".to_owned()]);
    }

    #[test]
    fn body_relations_listed() {
        let body =
            CqBody::new(vec![Atom::new("r", vec![v(0)]), Atom::new("s", vec![v(0)])], vec![]);
        assert_eq!(body.relations(), ["r", "s"].into_iter().collect());
    }
}
