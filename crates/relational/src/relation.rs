//! Set-semantics relations with duplicate-suppressing insertion.
//!
//! coDB's update algorithm is built on exactly this primitive: when a set of
//! tuples `T` arrives for relation `R`, the node computes `T' = T \ R`,
//! inserts `T'`, and uses `T'` (the *delta*) to re-evaluate dependent rules.
//! [`Relation::insert_all`] performs that step and returns the delta.

use crate::schema::{RelationSchema, SchemaError};
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// A relation instance: a schema plus a set of tuples.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Relation {
    schema: RelationSchema,
    tuples: HashSet<Tuple>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation { schema, tuples: HashSet::new() }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterates over the tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Tuples sorted lexicographically — for deterministic output.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// Validates and inserts one tuple. Returns `Ok(true)` when the tuple is
    /// new, `Ok(false)` when it was already present.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, SchemaError> {
        self.schema.validate(&t)?;
        Ok(self.tuples.insert(t))
    }

    /// Inserts a batch and returns the *delta*: the sub-batch that was not
    /// already present (in insertion order, deduplicated). This is the
    /// `T' = T \ R` step of the coDB update algorithm.
    pub fn insert_all(
        &mut self,
        batch: impl IntoIterator<Item = Tuple>,
    ) -> Result<Vec<Tuple>, SchemaError> {
        let mut delta = Vec::new();
        for t in batch {
            self.schema.validate(&t)?;
            if self.tuples.insert(t.clone()) {
                delta.push(t);
            }
        }
        Ok(delta)
    }

    /// Removes a tuple; returns whether it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t)
    }

    /// Drops all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }

    /// Approximate byte volume of the whole relation (statistics module).
    pub fn size_bytes(&self) -> usize {
        self.tuples.iter().map(Tuple::size_bytes).sum()
    }

    /// Builds a hash index on one column: value at `col` → matching tuples.
    /// Used by the evaluator for index-nested-loop joins.
    pub fn index_on(&self, col: usize) -> HashMap<&crate::Value, Vec<&Tuple>> {
        let mut idx: HashMap<&crate::Value, Vec<&Tuple>> = HashMap::new();
        for t in &self.tuples {
            match idx.entry(&t[col]) {
                Entry::Occupied(mut e) => e.get_mut().push(t),
                Entry::Vacant(e) => {
                    e.insert(vec![t]);
                }
            }
        }
        idx
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tup;
    use crate::value::ValueType;

    fn rel() -> Relation {
        Relation::new(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Str]))
    }

    #[test]
    fn insert_dedups() {
        let mut r = rel();
        assert!(r.insert(tup![1, "a"]).unwrap());
        assert!(!r.insert(tup![1, "a"]).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_all_returns_delta_only() {
        let mut r = rel();
        r.insert(tup![1, "a"]).unwrap();
        let delta =
            r.insert_all(vec![tup![1, "a"], tup![2, "b"], tup![2, "b"], tup![3, "c"]]).unwrap();
        assert_eq!(delta, vec![tup![2, "b"], tup![3, "c"]]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn insert_validates_schema() {
        let mut r = rel();
        assert!(r.insert(tup!["bad", 1]).is_err());
        assert!(r.insert(tup![1]).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn remove_and_clear() {
        let mut r = rel();
        r.insert(tup![1, "a"]).unwrap();
        assert!(r.remove(&tup![1, "a"]));
        assert!(!r.remove(&tup![1, "a"]));
        r.insert(tup![2, "b"]).unwrap();
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = rel();
        r.insert(tup![2, "b"]).unwrap();
        r.insert(tup![1, "a"]).unwrap();
        assert_eq!(r.sorted(), vec![tup![1, "a"], tup![2, "b"]]);
    }

    #[test]
    fn index_groups_by_column_value() {
        let mut r = rel();
        r.insert(tup![1, "a"]).unwrap();
        r.insert(tup![1, "b"]).unwrap();
        r.insert(tup![2, "c"]).unwrap();
        let idx = r.index_on(0);
        assert_eq!(idx[&crate::Value::Int(1)].len(), 2);
        assert_eq!(idx[&crate::Value::Int(2)].len(), 1);
    }

    #[test]
    fn size_bytes_sums_tuples() {
        let mut r = rel();
        r.insert(tup![1, "a"]).unwrap();
        assert_eq!(r.size_bytes(), tup![1, "a"].size_bytes());
    }

    #[test]
    fn equality_is_structural() {
        let mut a = rel();
        let mut b = rel();
        a.insert(tup![1, "a"]).unwrap();
        b.insert(tup![1, "a"]).unwrap();
        assert_eq!(a, b);
        b.insert(tup![2, "b"]).unwrap();
        assert_ne!(a, b);
    }
}
