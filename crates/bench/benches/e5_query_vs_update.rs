//! Criterion bench for experiment e5_query_vs_update (see DESIGN.md §4).

use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e5_query_vs_update");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}
use codb_core::CoDbNetwork;
use codb_net::SimConfig;

/// E5: query-time answering vs update+local query, chain-8.
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    let s = scenario(Topology::Chain(8), 100, RuleStyle::CopyGav);
    g.bench_function("query_time_fetch", |b| {
        b.iter(|| {
            let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
            net.run_query(s.sink(), s.sink_query(), true)
        })
    });
    g.bench_function("update_then_local_query", |b| {
        b.iter(|| {
            let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
            net.run_update(s.sink());
            net.run_query(s.sink(), s.sink_query(), false)
        })
    });
    g.bench_function("local_query_after_update", |b| {
        let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
        net.run_update(s.sink());
        b.iter(|| net.run_query(s.sink(), s.sink_query(), false))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
