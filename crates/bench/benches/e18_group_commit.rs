//! Criterion bench for experiment e18: WAL append throughput on a
//! many-store single host, per fsync policy — per-record `Always`,
//! per-store `EveryN`, and the shared group-commit scheduler (one
//! [`FsyncScheduler`] coalescing every store's fsyncs).

use codb_relational::{Instance, NullFactory, RelationSchema, Snapshot, Tuple, Value, ValueType};
use codb_store::{
    Codec, FsyncScheduler, ProtocolCounters, RecvCaches, ScratchDir, Store, SyncPolicy, WalRecord,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const STORES: usize = 8;
const RECORDS: u64 = 256;
const BURST: u64 = 16;

/// Appends `RECORDS` local-insert records across `STORES` stores in
/// bursts of `BURST`, then flushes — the single-host ingest of E18.
fn ingest(policy: SyncPolicy) {
    let sched = FsyncScheduler::for_policy(policy);
    let mut inst = Instance::new();
    inst.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Int]));
    let snap = Snapshot::capture(&inst, &NullFactory::new(1));
    let dirs: Vec<ScratchDir> = (0..STORES).map(|_| ScratchDir::new("bench-e18")).collect();
    let mut stores: Vec<Store> = dirs
        .iter()
        .map(|d| {
            Store::create_with(
                d.path(),
                &snap,
                &RecvCaches::new(),
                &ProtocolCounters::default(),
                policy,
                Codec::Binary,
                sched.as_ref(),
            )
            .unwrap()
        })
        .collect();
    for k in 0..RECORDS {
        let target = ((k / BURST).wrapping_mul(7) % STORES as u64) as usize;
        stores[target]
            .append(&WalRecord::LocalInsert {
                relation: "r".into(),
                tuple: Tuple::new(vec![Value::Int(k as i64), Value::Int(target as i64)]),
            })
            .unwrap();
    }
    for s in &mut stores {
        s.sync().unwrap();
    }
}

/// E18: many-store single-host append cost per fsync policy.
fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e18_group_commit");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (label, policy) in [
        ("always", SyncPolicy::Always),
        ("everyN-8", SyncPolicy::EveryN(8)),
        ("group-shared", SyncPolicy::GroupCommit { max_batch: 64, max_records: 64 }),
    ] {
        g.bench_with_input(BenchmarkId::new(label, RECORDS), &policy, |b, &policy| {
            b.iter(|| ingest(policy))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
