//! Criterion bench for experiment e17: durable-store recovery — WAL
//! replay throughput as a function of the un-compacted log length, per
//! on-disk codec (JSON vs binary).

use codb_relational::glav::TField;
use codb_relational::{
    apply_firings, Instance, NullFactory, RelationSchema, RuleFiring, Snapshot, Value, ValueType,
};
use codb_store::{Codec, ProtocolCounters, RecvCaches, ScratchDir, Store, SyncPolicy, WalRecord};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Builds a store whose WAL tail holds `batches` applied batches (no
/// checkpoints, so recovery replays all of them).
fn build_store(batches: u64, codec: Codec) -> ScratchDir {
    let dir = ScratchDir::new("bench-e17");
    let mut inst = Instance::new();
    inst.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Int]));
    let mut nulls = NullFactory::new(1);
    let mut recv = RecvCaches::new();
    let mut store = Store::create(
        dir.path(),
        &Snapshot::capture(&inst, &nulls),
        &recv,
        &ProtocolCounters::default(),
        SyncPolicy::Never,
        codec,
    )
    .unwrap();
    for b in 0..batches {
        let firings = vec![RuleFiring {
            atoms: vec![(
                "r".to_owned(),
                vec![TField::Const(Value::Int(b as i64)), TField::Fresh(0)],
            )],
        }];
        let cache = recv.entry("e".to_owned()).or_default();
        let fresh: Vec<RuleFiring> =
            firings.into_iter().filter(|f| cache.insert(f.clone())).collect();
        store.append(&WalRecord::Applied { rule: "e".to_owned(), firings: fresh.clone() }).unwrap();
        apply_firings(&mut inst, &fresh, &mut nulls).unwrap();
    }
    store.sync().unwrap();
    dir
}

/// E17: store recovery (snapshot load + WAL replay) vs log length.
fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e17_recovery");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for codec in [Codec::Json, Codec::Binary] {
        for batches in [100u64, 1000] {
            let dir = build_store(batches, codec);
            g.bench_with_input(BenchmarkId::new(codec.to_string(), batches), &dir, |b, dir| {
                b.iter(|| Store::open(dir.path(), SyncPolicy::Never, codec).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
