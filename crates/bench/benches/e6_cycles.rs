//! Criterion bench for experiment e6_cycles (see DESIGN.md §4).

use codb_bench::experiments::run_update;
use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e6_cycles");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

/// E6: cyclic fixpoints vs ring length.
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for n in [2usize, 4, 8, 16] {
        let s = scenario(Topology::Ring(n), 50, RuleStyle::CopyGav);
        g.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, s| b.iter(|| run_update(s)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
