//! Criterion bench for experiment e8_datasize (see DESIGN.md §4).

use codb_bench::experiments::run_update;
use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e8_datasize");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

/// E8: update cost vs tuples per node (chain-8).
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for tuples in [100usize, 500, 2000] {
        let s = scenario(Topology::Chain(8), tuples, RuleStyle::CopyGav);
        g.throughput(criterion::Throughput::Elements(tuples as u64));
        g.bench_with_input(BenchmarkId::from_parameter(tuples), &s, |b, s| {
            b.iter(|| run_update(s))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
