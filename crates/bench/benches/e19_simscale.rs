//! Criterion bench for experiment e19: simulator event-loop throughput
//! at scale — flood waves to quiescence over 1k-node topologies, so the
//! measured cost is the calendar event queue and the pipe arena, not the
//! database protocol.

use codb_net::{LatencyModel, PipeConfig};
use codb_workload::{run_flood, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const N: usize = 1_000;
const WAVES: u32 = 2;

/// E19: events through the simulator per topology family at 1k nodes.
fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e19_simscale");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let cases: [(&str, Topology, Option<LatencyModel>); 4] = [
        ("chain", Topology::Chain(N), None),
        ("scale-free", Topology::ScaleFree { n: N, m: 3, seed: 0x5CA1E }, None),
        ("ring-gradient", Topology::RingGradient { n: N, chords: 6 }, None),
        (
            "scale-free-geo",
            Topology::ScaleFree { n: N, m: 3, seed: 0x5CA1E },
            Some(LatencyModel::geo_scattered(0x6E0, N)),
        ),
    ];
    for (label, topology, latency) in cases {
        g.bench_with_input(BenchmarkId::new(label, N), &topology, |b, topology| {
            b.iter(|| {
                let report = run_flood(topology, PipeConfig::lan(), latency.clone(), WAVES, 0xE19);
                assert_eq!(report.reached, report.nodes);
                report.events
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
