//! Criterion bench for experiment e11_relational_micro (see DESIGN.md §4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e11_relational_micro");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}
use codb_relational::{parse_query, tup, Instance, RelationSchema, ValueType};

/// E11: relational-engine micro-benchmarks.
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    let mut inst = Instance::new();
    inst.add_relation(RelationSchema::with_types("a", &[ValueType::Int, ValueType::Int]));
    inst.add_relation(RelationSchema::with_types("b", &[ValueType::Int, ValueType::Int]));
    for k in 0..5_000i64 {
        inst.insert("a", tup![k, k + 1]).unwrap();
        inst.insert("b", tup![k + 1, k + 2]).unwrap();
    }
    let join = parse_query("ans(X, Z) :- a(X, Y), b(Y, Z).").unwrap();
    g.bench_function("hash_join_5k", |b| {
        b.iter(|| codb_relational::answer_query(&join, &inst).unwrap())
    });
    let filter = parse_query("ans(X) :- a(X, Y), Y > 2500.").unwrap();
    g.bench_function("filter_scan_5k", |b| {
        b.iter(|| codb_relational::answer_query(&filter, &inst).unwrap())
    });
    let rule = codb_relational::parse_rule("t(X, E) <- a(X, Y).").unwrap();
    g.bench_function("glav_fire_5k", |b| b.iter(|| rule.fire(&inst).unwrap()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
