//! Criterion bench for experiment e2_topologies (see DESIGN.md §4).

use codb_bench::experiments::run_update;
use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e2_topologies");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

/// E2: update cost across topology families (~9 nodes).
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for topo in [
        Topology::Chain(9),
        Topology::Ring(9),
        Topology::Star { leaves: 8 },
        Topology::Tree { height: 2 },
        Topology::Grid { w: 3, h: 3 },
        Topology::RandomDag { n: 9, p_percent: 25, seed: 5 },
    ] {
        let s = scenario(topo, 100, RuleStyle::CopyGav);
        g.bench_with_input(BenchmarkId::from_parameter(topo), &s, |b, s| b.iter(|| run_update(s)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
