//! Criterion bench for experiment e7_dynamic (see DESIGN.md §4).

use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e7_dynamic");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}
use codb_core::CoDbNetwork;
use codb_net::SimConfig;

/// E7: super-peer rules re-broadcast (reconfiguration) cost.
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for n in [4usize, 8, 16] {
        let s = scenario(Topology::Chain(n), 50, RuleStyle::CopyGav);
        g.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, s| {
            b.iter(|| {
                let mut config = s.build_config();
                config.version = 1;
                let mut net =
                    CoDbNetwork::build_with_superpeer(config.clone(), SimConfig::default())
                        .unwrap();
                let mut v2 = config;
                v2.version = 2;
                net.broadcast_rules(v2).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
