//! Criterion bench for experiment e15_incremental (see DESIGN.md §4).

use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e15_incremental");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}
use codb_core::{CoDbNetwork, NodeSettings};
use codb_net::SimConfig;

/// E15: second-update cost, incremental vs full re-send.
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for (name, incremental) in [("incremental", true), ("resend", false)] {
        let s = scenario(Topology::Chain(8), 200, RuleStyle::CopyGav);
        g.bench_with_input(BenchmarkId::from_parameter(name), &s, |b, s| {
            b.iter(|| {
                let settings =
                    NodeSettings { incremental_updates: incremental, ..Default::default() };
                let mut net = CoDbNetwork::build_with(
                    s.build_config(),
                    SimConfig::default(),
                    settings,
                    false,
                )
                .unwrap();
                net.run_update(s.sink());
                net.run_update(s.sink())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
