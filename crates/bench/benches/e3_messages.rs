//! Criterion bench for experiment e3_messages (see DESIGN.md §4).

use codb_bench::experiments::run_update;
use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e3_messages");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

/// E3: the per-rule statistics pipeline (run + aggregate report).
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    let s = scenario(Topology::Chain(8), 200, RuleStyle::CopyGav);
    g.bench_function("chain8_run_and_aggregate", |b| {
        b.iter(|| {
            let (o, _, net) = run_update(&s);
            let report = net.network_report();
            report.summarise(o.update).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
