//! Criterion bench for experiment e20: sustained-ingest throughput of
//! the sharded threaded runtime — the same `CoDbNode` state machines the
//! simulator schedules, multiplexed over bounded mailboxes by a worker
//! pool, with the simulator fixpoint as the correctness bar on every
//! iteration.

use codb_workload::{
    run_parallel_ingest, DataDist, ParallelIngestPlan, RuleStyle, Scenario, Topology,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn plan(workers: usize) -> ParallelIngestPlan {
    ParallelIngestPlan {
        scenario: Scenario {
            topology: Topology::Chain(8),
            tuples_per_node: 5,
            rule_style: RuleStyle::CopyGav,
            dist: DataDist::Uniform { domain: 1 << 40 },
            seed: 0xE20,
        },
        workers,
        mailbox_depth: 256,
        inserts_per_node: 8,
        rounds: 1,
        seed: 0xE20,
    }
}

/// E20: one ingest + update round on an 8-node chain per worker count.
fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e20_parallel_ingest");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(5));
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            b.iter(|| {
                let report = run_parallel_ingest(&plan(workers));
                assert_eq!(report.lost_updates, 0);
                assert!(report.converged);
                report.delivered
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
