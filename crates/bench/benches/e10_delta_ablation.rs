//! Criterion bench for experiment e10_delta_ablation (see DESIGN.md §4).

use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e10_delta_ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}
use codb_bench::experiments::{chase_naive, chase_seminaive};

/// E10: naive vs semi-naive chase.
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for topo in [Topology::Ring(4), Topology::Ring(8)] {
        let s = scenario(topo, 200, RuleStyle::CopyGav);
        let config = s.build_config();
        g.bench_with_input(BenchmarkId::new("naive", topo), &config, |b, c| {
            b.iter(|| chase_naive(c))
        });
        g.bench_with_input(BenchmarkId::new("seminaive", topo), &config, |b, c| {
            b.iter(|| chase_seminaive(c))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
