//! Criterion bench for experiment e12_loss (see DESIGN.md §4).

use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e12_loss");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}
use codb_core::{CoDbNetwork, NodeSettings};
use codb_net::{PipeConfig, SimConfig, SimTime};

/// E12: update under message loss with retransmission.
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for loss_pct in [0u32, 10, 20] {
        let s = scenario(Topology::Chain(6), 100, RuleStyle::CopyGav);
        g.bench_with_input(BenchmarkId::from_parameter(loss_pct), &s, |b, s| {
            b.iter(|| {
                let pipe = PipeConfig::lan().with_loss(loss_pct as f64 / 100.0);
                let sim = SimConfig { seed: 99, default_pipe: pipe, max_events: 10_000_000 };
                let settings = NodeSettings {
                    retransmit_after: SimTime::from_millis(20),
                    pipe,
                    ..Default::default()
                };
                let mut net =
                    CoDbNetwork::build_with(s.build_config(), sim, settings, false).unwrap();
                net.run_update(s.sink())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
