//! Criterion bench for experiment e14_join_rules (see DESIGN.md §4).

use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e14_join_rules");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}
use codb_bench::experiments::run_update;

/// E14: join-body rules vs copy rules.
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for (name, style) in
        [("copy", RuleStyle::CopyGav), ("join16", RuleStyle::JoinGav { join_domain: 16 })]
    {
        let s = scenario(Topology::Chain(6), 200, style);
        g.bench_with_input(BenchmarkId::from_parameter(name), &s, |b, s| b.iter(|| run_update(s)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
