//! Criterion bench for experiment e13_scoped (see DESIGN.md §4).

use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e13_scoped");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}
use codb_core::CoDbNetwork;
use codb_net::SimConfig;

/// E13: scoped (query-dependent) vs global updates on a star.
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for leaves in [4usize, 8] {
        let s = scenario(Topology::Star { leaves }, 200, RuleStyle::CopyGav);
        g.bench_with_input(BenchmarkId::new("global", leaves), &s, |b, s| {
            b.iter(|| {
                let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
                net.run_update(s.sink())
            })
        });
        g.bench_with_input(BenchmarkId::new("scoped_all", leaves), &s, |b, s| {
            b.iter(|| {
                let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
                net.run_scoped_update(s.sink(), vec![Scenario::relation_of(0)])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
