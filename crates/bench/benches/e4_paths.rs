//! Criterion bench for experiment e4_paths (see DESIGN.md §4).

use codb_bench::experiments::run_update;
use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e4_paths");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

/// E4: propagation-path measurement across deep topologies.
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for topo in [Topology::Chain(16), Topology::Ring(8), Topology::Grid { w: 4, h: 4 }] {
        let s = scenario(topo, 50, RuleStyle::CopyGav);
        g.bench_with_input(BenchmarkId::from_parameter(topo), &s, |b, s| {
            b.iter(|| {
                let (o, _, _) = run_update(s);
                o.summary.longest_path
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
