//! Criterion bench for experiment e9_glav_vs_gav (see DESIGN.md §4).

use codb_bench::experiments::run_update;
use codb_workload::{DataDist, RuleStyle, Scenario, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn scenario(topology: Topology, tuples: usize, style: RuleStyle) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: style,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("e9_glav_vs_gav");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

/// E9: rule-style ablation (GAV copy / GAV filter / GLAV with nulls).
fn bench(c: &mut Criterion) {
    let mut g = quick(c);
    for (name, style) in [
        ("copy_gav", RuleStyle::CopyGav),
        ("filter_gav", RuleStyle::FilterGav { threshold: 1 << 39 }),
        ("project_glav", RuleStyle::ProjectGlav),
    ] {
        let s = scenario(Topology::Chain(8), 500, style);
        g.bench_with_input(BenchmarkId::from_parameter(name), &s, |b, s| b.iter(|| run_update(s)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
