//! Plain-text result tables — the harness's replacement for the demo's
//! statistics screens. Tables also serialise to JSON (`exp --json`) so
//! perf trajectories can be tracked by machines, not just eyeballs.

use serde::Serialize;
use std::fmt::Write as _;

/// Per-pipe traffic totals attached to a table row — machine-readable
/// side data for `exp --json` (E19 records its heaviest pipes this way).
/// The human-rendered table is unaffected.
#[derive(Clone, Debug, Serialize)]
pub struct PipeTotals {
    /// First cell of the row these totals belong to (the topology label).
    pub row: String,
    /// Sending peer id.
    pub from: u64,
    /// Receiving peer id.
    pub to: u64,
    /// Messages handed to the pipe.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped by the loss model.
    pub dropped: u64,
    /// Payload bytes handed to the pipe.
    pub bytes: u64,
}

/// A rendered experiment result: a title, column headers and rows.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment id + description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Per-pipe traffic totals (empty for experiments that don't record
    /// them); serialised into `--json` output, not rendered.
    pub pipes: Vec<PipeTotals>,
}

impl Table {
    /// Creates a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            pipes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Attaches per-pipe totals from `stats`, labelled with `row` (the
    /// row's first cell), keeping only the `top` pipes by bytes sent so a
    /// 10k-node sweep doesn't serialise half a million pipe entries.
    pub fn pipe_totals(&mut self, row: &str, stats: &codb_net::NetStats, top: usize) {
        let mut pipes: Vec<PipeTotals> = stats
            .per_pipe
            .iter()
            .map(|(&(from, to), p)| PipeTotals {
                row: row.to_owned(),
                from: from.0,
                to: to.0,
                sent: p.sent,
                delivered: p.delivered,
                dropped: p.dropped,
                bytes: p.bytes_sent,
            })
            .collect();
        pipes.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.from.cmp(&b.from)));
        pipes.truncate(top);
        self.pipes.extend(pipes);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0 — demo", &["n", "time"]);
        t.row(vec!["2".into(), "1.5ms".into()]);
        t.row(vec!["100".into(), "12.0ms".into()]);
        let s = t.render();
        assert!(s.starts_with("## E0 — demo"));
        assert!(s.contains("  n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
