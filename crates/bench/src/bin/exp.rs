//! Experiment runner: prints the tables of DESIGN.md §4.
//!
//! Usage: `cargo run -p codb-bench --release --bin exp -- [e1 … e16 | all]`
//!
//! Extra modes:
//! * `exp --quick` — a seconds-scale smoke run of the full harness
//!   (update + query on small topologies), for CI.
//! * `exp timeline [chain|ring|grid]` — render an update Gantt chart.

use codb_bench::{all, by_id, Table};

/// `exp timeline [chain|ring|grid]` — render an update Gantt chart.
fn timeline(kind: &str) {
    use codb_core::CoDbNetwork;
    use codb_net::SimConfig;
    use codb_workload::{Scenario, Topology};
    let topology = match kind {
        "ring" => Topology::Ring(8),
        "grid" => Topology::Grid { w: 4, h: 2 },
        _ => Topology::Chain(8),
    };
    let s = Scenario { tuples_per_node: 100, ..Scenario::quick(topology) };
    let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
    let o = net.run_update(s.sink());
    println!("{}", codb_bench::render_timeline(&net.network_report(), o.update, 60));
}

/// `exp --quick` — one cheap end-to-end pass per topology family, so CI
/// exercises the bench harness (scenario build, update, query, reporting)
/// without paying for the full experiment suite.
fn quick() {
    use codb_bench::experiments::run_update;
    use codb_workload::{Scenario, Topology};

    let mut t = Table::new(
        "quick smoke — update + query per topology (10 tuples/node)",
        &["topology", "nodes", "data msgs", "tuples added", "query answers"],
    );
    let topologies = [
        Topology::Chain(4),
        Topology::Ring(4),
        Topology::Star { leaves: 3 },
        Topology::Grid { w: 2, h: 2 },
    ];
    for topology in topologies {
        let s = Scenario { tuples_per_node: 10, ..Scenario::quick(topology) };
        let (o, _host, mut net) = run_update(&s);
        let q = net.run_query(s.sink(), s.sink_query(), false);
        t.row(vec![
            format!("{topology}"),
            o.summary.nodes.to_string(),
            o.summary.data_messages.to_string(),
            o.summary.tuples_added.to_string(),
            q.result.answers.len().to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--quick") {
        if args.len() > 1 {
            eprintln!("--quick takes no other arguments (got {:?})", args);
            std::process::exit(1);
        }
        quick();
        return;
    }
    if args.first().map(String::as_str) == Some("timeline") {
        timeline(args.get(1).map(String::as_str).unwrap_or("chain"));
        return;
    }
    let tables = if args.is_empty() || args.iter().any(|a| a == "all") {
        all()
    } else {
        args.iter()
            .map(|id| {
                by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment {id:?} (use e1..e16, all, --quick or timeline)");
                    std::process::exit(1);
                })
            })
            .collect()
    };
    for t in tables {
        println!("{}", t.render());
    }
}
