//! Experiment runner: prints the tables of DESIGN.md §4.
//!
//! Usage: `cargo run -p codb-bench --release --bin exp -- [e1 … e20 | all]`
//!
//! `e19-quick` runs the CI-sized E19 acceptance smoke (100 → 10k chain
//! sweep plus scale-free and geo rows) instead of the full sweep;
//! `e20-quick` runs the E20 acceptance smoke (two worker counts plus the
//! host-crash durability row on the sharded threaded runtime).
//!
//! Extra modes:
//! * `exp --quick` — a seconds-scale smoke run of the full harness
//!   (update + query on small topologies), for CI.
//! * `exp timeline [chain|ring|grid]` — render an update Gantt chart.
//! * `exp --json PATH …` — additionally write the selected experiments'
//!   tables (title, headers, rows) as JSON to PATH; the human-readable
//!   tables are printed unchanged. Combines with ids, `all` and
//!   `--quick`.

use codb_bench::{all, by_id, Table};

/// `exp timeline [chain|ring|grid]` — render an update Gantt chart.
fn timeline(kind: &str) {
    use codb_core::CoDbNetwork;
    use codb_net::SimConfig;
    use codb_workload::{Scenario, Topology};
    let topology = match kind {
        "ring" => Topology::Ring(8),
        "grid" => Topology::Grid { w: 4, h: 2 },
        _ => Topology::Chain(8),
    };
    let s = Scenario { tuples_per_node: 100, ..Scenario::quick(topology) };
    let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
    let o = net.run_update(s.sink());
    println!("{}", codb_bench::render_timeline(&net.network_report(), o.update, 60));
}

/// `exp --quick` — one cheap end-to-end pass per topology family, so CI
/// exercises the bench harness (scenario build, update, query, reporting)
/// without paying for the full experiment suite.
fn quick() -> Table {
    use codb_bench::experiments::run_update;
    use codb_workload::{Scenario, Topology};

    let mut t = Table::new(
        "quick smoke — update + query per topology (10 tuples/node)",
        &["topology", "nodes", "data msgs", "tuples added", "query answers"],
    );
    let topologies = [
        Topology::Chain(4),
        Topology::Ring(4),
        Topology::Star { leaves: 3 },
        Topology::Grid { w: 2, h: 2 },
    ];
    for topology in topologies {
        let s = Scenario { tuples_per_node: 10, ..Scenario::quick(topology) };
        let (o, _host, mut net) = run_update(&s);
        let q = net.run_query(s.sink(), s.sink_query(), false);
        t.row(vec![
            format!("{topology}"),
            o.summary.nodes.to_string(),
            o.summary.data_messages.to_string(),
            o.summary.tuples_added.to_string(),
            q.result.answers.len().to_string(),
        ]);
    }
    t
}

fn fail(msg: &str) -> ! {
    eprintln!("exp: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Extract `--json PATH` wherever it appears.
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(i) => {
            args.remove(i);
            if i >= args.len() {
                fail("--json needs a PATH argument");
            }
            Some(args.remove(i))
        }
        None => None,
    };

    let tables: Vec<Table> = if args.iter().any(|a| a == "--quick") {
        if args.len() > 1 {
            fail(&format!("--quick takes no other arguments (got {:?})", args));
        }
        vec![quick()]
    } else if args.first().map(String::as_str) == Some("timeline") {
        if json_path.is_some() {
            fail("timeline renders a chart; --json applies to experiment tables");
        }
        timeline(args.get(1).map(String::as_str).unwrap_or("chain"));
        return;
    } else if args.is_empty() || args.iter().any(|a| a == "all") {
        all()
    } else {
        args.iter()
            .map(|id| {
                by_id(id).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown experiment {id:?} (use e1..e20, e19-quick, e20-quick, all, \
                         --quick or timeline)"
                    ))
                })
            })
            .collect()
    };

    for t in &tables {
        println!("{}", t.render());
    }
    if let Some(path) = json_path {
        let js = match serde_json::to_string_pretty(&tables) {
            Ok(js) => js,
            Err(e) => fail(&format!("JSON serialisation failed: {e}")),
        };
        if let Err(e) = std::fs::write(&path, js + "\n") {
            fail(&format!("cannot write {path}: {e}"));
        }
        eprintln!("exp: wrote {} table(s) to {path}", tables.len());
    }
}
