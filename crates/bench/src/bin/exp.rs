//! Experiment runner: prints the tables of DESIGN.md §4.
//!
//! Usage: `cargo run -p codb-bench --release --bin exp -- [e1 … e12 | all]`

use codb_bench::{all, by_id};

/// `exp timeline [chain|ring|grid]` — render an update Gantt chart.
fn timeline(kind: &str) {
    use codb_core::CoDbNetwork;
    use codb_net::SimConfig;
    use codb_workload::{Scenario, Topology};
    let topology = match kind {
        "ring" => Topology::Ring(8),
        "grid" => Topology::Grid { w: 4, h: 2 },
        _ => Topology::Chain(8),
    };
    let s = Scenario { tuples_per_node: 100, ..Scenario::quick(topology) };
    let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
    let o = net.run_update(s.sink());
    println!("{}", codb_bench::render_timeline(&net.network_report(), o.update, 60));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("timeline") {
        timeline(args.get(1).map(String::as_str).unwrap_or("chain"));
        return;
    }
    let tables = if args.is_empty() || args.iter().any(|a| a == "all") {
        all()
    } else {
        args.iter()
            .map(|id| {
                by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment {id:?} (use e1..e12 or all)");
                    std::process::exit(1);
                })
            })
            .collect()
    };
    for t in tables {
        println!("{}", t.render());
    }
}
