//! ASCII timeline of a global update — when each node started, closed
//! (paper's link-state rule) and saw the completion flood. The textual
//! stand-in for the demo's per-update report screens.

use codb_core::{NetworkReport, UpdateId};
use codb_net::SimTime;
use std::fmt::Write as _;

/// Renders a per-node Gantt bar chart for `update` from the collected
/// node reports. `width` is the bar area in characters.
///
/// Legend: `░` open (working), `▓` closed early (paper's rule), from the
/// completion flood on the bar ends; `S` marks the start.
pub fn render_timeline(report: &NetworkReport, update: UpdateId, width: usize) -> String {
    let mut rows: Vec<(String, SimTime, Option<SimTime>, Option<SimTime>)> = Vec::new();
    let mut t_min = SimTime(u64::MAX);
    let mut t_max = SimTime::ZERO;
    for (id, node) in &report.nodes {
        let Some(r) = node.updates.get(&update) else { continue };
        t_min = t_min.min(r.started_at);
        if let Some(f) = r.closed_at.max(r.completed_at) {
            t_max = t_max.max(f);
        }
        rows.push((id.to_string(), r.started_at, r.closed_at, r.completed_at));
    }
    if rows.is_empty() {
        return format!("no node saw update {update}\n");
    }
    let span = t_max.saturating_sub(t_min).as_nanos().max(1);
    let scale = |t: SimTime| -> usize {
        ((t.saturating_sub(t_min).as_nanos() as u128 * width as u128) / span as u128)
            .min(width as u128) as usize
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "update {update}: {} → {} ({} total)",
        t_min,
        t_max,
        t_max.saturating_sub(t_min)
    );
    for (name, started, closed, completed) in rows {
        let s = scale(started);
        let c = closed.map(&scale).unwrap_or(width);
        let f = completed.map(&scale).unwrap_or(width);
        let mut bar = String::with_capacity(width + 1);
        for x in 0..width {
            bar.push(if x < s {
                ' '
            } else if x == s {
                'S'
            } else if x < c {
                '░'
            } else if x < f {
                '▓'
            } else if x == f.max(c) {
                '|'
            } else {
                ' '
            });
        }
        let _ = writeln!(out, "{name:>6} {bar}");
    }
    let _ = writeln!(out, "       S=start ░=open ▓=closed(early) |=completion");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use codb_core::{CoDbNetwork, NetworkConfig};
    use codb_net::SimConfig;
    use codb_workload::{Scenario, Topology};

    #[test]
    fn renders_chain_timeline() {
        let s = Scenario { tuples_per_node: 10, ..Scenario::quick(Topology::Chain(4)) };
        let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
        let o = net.run_update(s.sink());
        let report = net.network_report();
        let timeline = render_timeline(&report, o.update, 40);
        assert!(timeline.contains("update "));
        assert_eq!(timeline.lines().count(), 1 + 4 + 1);
        assert!(timeline.contains('S'));
        assert!(timeline.contains('░'));
    }

    #[test]
    fn unknown_update_is_reported() {
        let report = NetworkReport::default();
        let u = UpdateId { origin: codb_core::NodeId(0), epoch: 0, seq: 9 };
        assert!(render_timeline(&report, u, 20).contains("no node"));
    }

    #[test]
    fn empty_config_builds_nothing() {
        let config = NetworkConfig::default();
        assert!(config.validate().is_ok());
    }
}
