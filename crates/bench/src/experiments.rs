//! The experiment suite (DESIGN.md §4): one function per experiment id,
//! each regenerating one table/figure of the reconstructed evaluation.
//!
//! Every function returns a [`Table`] whose rows are the series the demo
//! paper's statistics module would report: total update execution time
//! (simulated), message counts and volumes per coordination rule, longest
//! update propagation path, and the query-time vs materialised trade-off.
//! Host (wall-clock) time is reported alongside so Criterion benches and
//! the `exp` binary agree on what is being measured.

use crate::table::Table;
use codb_core::{CoDbNetwork, NetworkConfig, NodeSettings, UpdateOutcome};
use codb_net::{PipeConfig, SimConfig, SimTime};
use codb_relational::{Instance, NullFactory, RuleFiring};
use codb_workload::{DataDist, ParallelIngestPlan, RuleStyle, Scenario, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Builds and runs one update for `scenario`; returns the outcome, the
/// host time spent, and the network (for further inspection).
pub fn run_update(scenario: &Scenario) -> (UpdateOutcome, Duration, CoDbNetwork) {
    let config = scenario.build_config();
    let t0 = Instant::now();
    let mut net = CoDbNetwork::build(config, SimConfig::default()).expect("valid scenario");
    let outcome = net.run_update(scenario.sink());
    (outcome, t0.elapsed(), net)
}

fn scenario(topology: Topology, tuples: usize) -> Scenario {
    Scenario {
        topology,
        tuples_per_node: tuples,
        rule_style: RuleStyle::CopyGav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 0xC0DB,
    }
}

fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// E1 — global update total execution time vs network size (chain).
pub fn e1() -> Table {
    let mut t = Table::new(
        "E1 — update time vs network size (chain, 200 tuples/node)",
        &["n", "sim total", "data msgs", "data bytes", "tuples added", "host ms"],
    );
    for n in [2usize, 4, 8, 16, 32, 48] {
        let s = scenario(Topology::Chain(n), 200);
        let (o, host, _) = run_update(&s);
        t.row(vec![
            n.to_string(),
            o.summary.total_time.to_string(),
            o.summary.data_messages.to_string(),
            o.summary.data_bytes.to_string(),
            o.summary.tuples_added.to_string(),
            ms(host),
        ]);
    }
    t
}

/// E2 — update time vs topology shape (≈15-node networks).
pub fn e2() -> Table {
    let mut t = Table::new(
        "E2 — update time vs topology (~15 nodes, 100 tuples/node)",
        &["topology", "nodes", "sim total", "data msgs", "longest path", "closed early", "host ms"],
    );
    for topo in [
        Topology::Chain(15),
        Topology::Ring(15),
        Topology::Star { leaves: 14 },
        Topology::Tree { height: 3 },
        Topology::Grid { w: 5, h: 3 },
        Topology::RandomDag { n: 15, p_percent: 20, seed: 5 },
    ] {
        let s = scenario(topo, 100);
        let (o, host, _) = run_update(&s);
        t.row(vec![
            topo.to_string(),
            topo.node_count().to_string(),
            o.summary.total_time.to_string(),
            o.summary.data_messages.to_string(),
            o.summary.longest_path.to_string(),
            o.summary.closed_early.to_string(),
            ms(host),
        ]);
    }
    t
}

/// E3 — query-result messages per coordination rule + volume per message
/// (the statistics module's headline numbers).
pub fn e3() -> Table {
    let mut t = Table::new(
        "E3 — per-rule data messages and volumes (chain-8, 500 tuples/node)",
        &["rule", "messages", "firings", "bytes", "bytes/msg"],
    );
    let s = scenario(Topology::Chain(8), 500);
    let (o, _, _) = run_update(&s);
    for (rule, traffic) in &o.summary.per_rule {
        t.row(vec![
            rule.clone(),
            traffic.messages.to_string(),
            traffic.firings.to_string(),
            traffic.bytes.to_string(),
            (traffic.bytes / traffic.messages.max(1)).to_string(),
        ]);
    }
    t
}

/// E4 — longest update propagation path vs topology and size.
pub fn e4() -> Table {
    let mut t = Table::new(
        "E4 — longest update propagation path (50 tuples/node)",
        &["topology", "predicted depth", "measured longest path"],
    );
    for topo in [
        Topology::Chain(4),
        Topology::Chain(8),
        Topology::Chain(16),
        Topology::Ring(4),
        Topology::Ring(8),
        Topology::Tree { height: 2 },
        Topology::Tree { height: 3 },
        Topology::Grid { w: 4, h: 4 },
        Topology::Star { leaves: 8 },
    ] {
        let s = scenario(topo, 50);
        let (o, _, _) = run_update(&s);
        t.row(vec![
            topo.to_string(),
            topo.depth_to_sink().to_string(),
            o.summary.longest_path.to_string(),
        ]);
    }
    t
}

/// E5 — query-time answering vs global update + local query (the paper's
/// motivation for batch updates).
pub fn e5() -> Table {
    let mut t = Table::new(
        "E5 — query-time vs materialised (chain, 200 tuples/node)",
        &[
            "n",
            "qtime first ans",
            "qtime sim",
            "qtime msgs",
            "update sim",
            "update msgs",
            "local sim",
            "amortise@",
        ],
    );
    for n in [2usize, 4, 8, 16] {
        let s = scenario(Topology::Chain(n), 200);
        let mut fetch_net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
        let q = fetch_net.run_query(s.sink(), s.sink_query(), true);

        let mut mat_net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
        let o = mat_net.run_update(s.sink());
        let local = mat_net.run_query(s.sink(), s.sink_query(), false);
        assert_eq!(q.result.answers.len(), local.result.answers.len());

        let amortise = o.summary.total_time.as_nanos().div_ceil(q.duration.as_nanos().max(1));
        let first = fetch_net
            .node(s.sink())
            .report()
            .queries
            .get(&q.query)
            .and_then(|r| r.first_answer_at)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            n.to_string(),
            first,
            q.duration.to_string(),
            q.messages.to_string(),
            o.summary.total_time.to_string(),
            o.messages.to_string(),
            local.duration.to_string(),
            amortise.to_string(),
        ]);
    }
    t
}

/// E6 — cyclic coordination rules: fixpoint depth and cost vs cycle length.
pub fn e6() -> Table {
    let mut t = Table::new(
        "E6 — cyclic rules (ring, 50 tuples/node): fixpoint cost vs cycle length",
        &["n", "sim total", "data msgs", "longest path", "tuples/node at fixpoint", "host ms"],
    );
    for n in [2usize, 4, 8, 16, 24] {
        let s = scenario(Topology::Ring(n), 50);
        let (o, host, net) = run_update(&s);
        let per_node = net
            .node(s.sink())
            .ldb()
            .get(&Scenario::relation_of(s.sink().0 as usize))
            .unwrap()
            .len();
        t.row(vec![
            n.to_string(),
            o.summary.total_time.to_string(),
            o.summary.data_messages.to_string(),
            o.summary.longest_path.to_string(),
            per_node.to_string(),
            ms(host),
        ]);
    }
    t
}

/// E7 — dynamic networks: super-peer re-broadcast mid-update; the update
/// still terminates and a follow-up on the new topology works.
pub fn e7() -> Table {
    let mut t = Table::new(
        "E7 — dynamic reconfiguration (chain-8, 200 tuples/node)",
        &["churn events", "first update nodes", "rewire sim", "second update sim", "second nodes"],
    );
    for churn in [0usize, 1, 2] {
        let s = scenario(Topology::Chain(8), 200);
        let mut config = s.build_config();
        config.version = 1;
        let mut net =
            CoDbNetwork::build_with_superpeer(config.clone(), SimConfig::default()).unwrap();
        net.sim_mut().inject(
            codb_core::HARNESS_PEER,
            s.sink().peer(),
            codb_core::Envelope::control(codb_core::Body::StartUpdate),
        );
        // Let the update run a little, then re-broadcast `churn` times.
        let mut rewire_time = SimTime::ZERO;
        for c in 0..churn {
            for _ in 0..30 {
                net.sim_mut().step();
            }
            let mut v = config.clone();
            v.version = 2 + c as u64;
            rewire_time = net.broadcast_rules(v).unwrap();
        }
        net.sim_mut().run_until_quiescent();
        let first = net.network_report();
        let first_update = first.update_ids()[0];
        let first_nodes = first.summarise(first_update).unwrap().nodes;

        let o2 = net.run_update(s.sink());
        t.row(vec![
            churn.to_string(),
            first_nodes.to_string(),
            rewire_time.to_string(),
            o2.summary.total_time.to_string(),
            o2.summary.nodes.to_string(),
        ]);
    }
    t
}

/// E8 — scaling the local data volume per node.
pub fn e8() -> Table {
    let mut t = Table::new(
        "E8 — update cost vs data volume (chain-8)",
        &["tuples/node", "sim total", "data msgs", "data bytes", "host ms"],
    );
    for tuples in [100usize, 500, 2_000, 10_000] {
        let s = scenario(Topology::Chain(8), tuples);
        let (o, host, _) = run_update(&s);
        t.row(vec![
            tuples.to_string(),
            o.summary.total_time.to_string(),
            o.summary.data_messages.to_string(),
            o.summary.data_bytes.to_string(),
            ms(host),
        ]);
    }
    t
}

/// E9 — ablation: GAV copy vs GAV filter vs proper GLAV (existential head
/// variables → marked nulls).
pub fn e9() -> Table {
    let mut t = Table::new(
        "E9 — rule-style ablation (chain-8, 1000 tuples/node)",
        &["style", "tuples added", "data bytes", "nulls at sink", "host ms"],
    );
    for (name, style) in [
        ("copy-GAV", RuleStyle::CopyGav),
        ("filter-GAV (50%)", RuleStyle::FilterGav { threshold: 1 << 39 }),
        ("project-GLAV", RuleStyle::ProjectGlav),
    ] {
        let s = Scenario { rule_style: style, ..scenario(Topology::Chain(8), 1000) };
        let (o, host, net) = run_update(&s);
        let sink_rel = Scenario::relation_of(s.topology.sink());
        let nulls = net
            .node(s.sink())
            .ldb()
            .get(&sink_rel)
            .unwrap()
            .iter()
            .filter(|t| t.has_null())
            .count();
        t.row(vec![
            name.to_string(),
            o.summary.tuples_added.to_string(),
            o.summary.data_bytes.to_string(),
            nulls.to_string(),
            ms(host),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E10 — delta-propagation ablation: centralized chase, naive full
// re-evaluation per round vs semi-naive delta evaluation.
// ---------------------------------------------------------------------

fn seed_instances(config: &NetworkConfig) -> BTreeMap<codb_core::NodeId, Instance> {
    config
        .nodes
        .iter()
        .map(|n| {
            let mut inst = Instance::with_schema(&n.schema);
            for (rel, t) in &n.data {
                inst.insert(rel, t.clone()).unwrap();
            }
            (n.id, inst)
        })
        .collect()
}

/// Naive chase: every round re-evaluates every rule body in full.
/// Returns `(derivations computed, rounds, host time)`.
pub fn chase_naive(config: &NetworkConfig) -> (u64, u64, Duration) {
    let t0 = Instant::now();
    let mut instances = seed_instances(config);
    let mut fired: BTreeMap<String, BTreeSet<RuleFiring>> = BTreeMap::new();
    let mut nulls = NullFactory::new(u64::MAX - 2);
    let mut derivations = 0u64;
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let mut changed = false;
        for rule in &config.rules {
            let all = rule.rule.fire(&instances[&rule.source]).unwrap();
            derivations += all.len() as u64;
            let fresh: Vec<RuleFiring> = all
                .into_iter()
                .filter(|f| fired.entry(rule.name().to_owned()).or_default().insert(f.clone()))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            let deltas = codb_relational::apply_firings(
                instances.get_mut(&rule.target).unwrap(),
                &fresh,
                &mut nulls,
            )
            .unwrap();
            changed |= !deltas.is_empty();
        }
        if !changed {
            return (derivations, rounds, t0.elapsed());
        }
        assert!(rounds < 100_000, "naive chase diverged");
    }
}

/// Semi-naive chase: after the first round, rule bodies are evaluated only
/// against the per-relation deltas of the previous round (exactly what the
/// distributed nodes do). Returns `(derivations computed, rounds, host)`.
pub fn chase_seminaive(config: &NetworkConfig) -> (u64, u64, Duration) {
    let t0 = Instant::now();
    let mut instances = seed_instances(config);
    let mut fired: BTreeMap<String, BTreeSet<RuleFiring>> = BTreeMap::new();
    let mut nulls = NullFactory::new(u64::MAX - 3);
    let mut derivations = 0u64;
    let mut rounds = 0u64;
    // node -> relation -> delta tuples from last round
    let mut deltas: BTreeMap<codb_core::NodeId, BTreeMap<String, Vec<codb_relational::Tuple>>> =
        BTreeMap::new();

    // Round 1: full evaluation.
    rounds += 1;
    for rule in &config.rules {
        let all = rule.rule.fire(&instances[&rule.source]).unwrap();
        derivations += all.len() as u64;
        let fresh: Vec<RuleFiring> = all
            .into_iter()
            .filter(|f| fired.entry(rule.name().to_owned()).or_default().insert(f.clone()))
            .collect();
        let new = codb_relational::apply_firings(
            instances.get_mut(&rule.target).unwrap(),
            &fresh,
            &mut nulls,
        )
        .unwrap();
        let slot = deltas.entry(rule.target).or_default();
        for (rel, ts) in new {
            slot.entry(rel).or_default().extend(ts);
        }
    }

    while !deltas.is_empty() {
        rounds += 1;
        let mut next: BTreeMap<codb_core::NodeId, BTreeMap<String, Vec<codb_relational::Tuple>>> =
            BTreeMap::new();
        for rule in &config.rules {
            let Some(source_deltas) = deltas.get(&rule.source) else { continue };
            let mut produced: Vec<RuleFiring> = Vec::new();
            for (rel, ts) in source_deltas {
                if rule.rule.body_relations().contains(rel.as_str()) {
                    produced
                        .extend(rule.rule.fire_delta(&instances[&rule.source], rel, ts).unwrap());
                }
            }
            derivations += produced.len() as u64;
            let fresh: Vec<RuleFiring> = produced
                .into_iter()
                .filter(|f| fired.entry(rule.name().to_owned()).or_default().insert(f.clone()))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            let new = codb_relational::apply_firings(
                instances.get_mut(&rule.target).unwrap(),
                &fresh,
                &mut nulls,
            )
            .unwrap();
            let slot = next.entry(rule.target).or_default();
            for (rel, ts) in new {
                slot.entry(rel).or_default().extend(ts);
            }
        }
        deltas = next;
        assert!(rounds < 100_000, "semi-naive chase diverged");
    }
    (derivations, rounds, t0.elapsed())
}

/// E10 — semi-naive delta propagation vs naive re-evaluation.
pub fn e10() -> Table {
    let mut t = Table::new(
        "E10 — delta ablation: naive vs semi-naive chase (500 tuples/node)",
        &[
            "topology",
            "naive derivations",
            "semi-naive derivations",
            "ratio",
            "naive ms",
            "semi-naive ms",
        ],
    );
    for topo in
        [Topology::Chain(8), Topology::Ring(4), Topology::Ring(8), Topology::Grid { w: 3, h: 3 }]
    {
        let s = scenario(topo, 500);
        let config = s.build_config();
        let (nd, _, nt) = chase_naive(&config);
        let (sd, _, st) = chase_seminaive(&config);
        t.row(vec![
            topo.to_string(),
            nd.to_string(),
            sd.to_string(),
            format!("{:.2}x", nd as f64 / sd.max(1) as f64),
            ms(nt),
            ms(st),
        ]);
    }
    t
}

/// E11 — relational micro-benchmarks (single numbers; Criterion gives the
/// distributions).
pub fn e11() -> Table {
    use codb_relational::{parse_query, tup, RelationSchema, ValueType};
    let mut t = Table::new(
        "E11 — relational engine micro-measurements",
        &["operation", "input size", "host ms"],
    );
    // Join of two 10k-tuple relations via the index path.
    let mut inst = Instance::new();
    inst.add_relation(RelationSchema::with_types("a", &[ValueType::Int, ValueType::Int]));
    inst.add_relation(RelationSchema::with_types("b", &[ValueType::Int, ValueType::Int]));
    for k in 0..10_000i64 {
        inst.insert("a", tup![k, k + 1]).unwrap();
        inst.insert("b", tup![k + 1, k + 2]).unwrap();
    }
    let q = parse_query("ans(X, Z) :- a(X, Y), b(Y, Z).").unwrap();
    let t0 = Instant::now();
    let answers = codb_relational::answer_query(&q, &inst).unwrap();
    t.row(vec!["hash-join 10k x 10k".into(), answers.len().to_string(), ms(t0.elapsed())]);

    // Dedup insert of 100k tuples (50% duplicates).
    let mut rel =
        codb_relational::Relation::new(RelationSchema::with_types("r", &[ValueType::Int]));
    let t0 = Instant::now();
    for k in 0..100_000i64 {
        rel.insert(tup![k % 50_000]).unwrap();
    }
    t.row(vec!["dedup insert 100k (50% dup)".into(), rel.len().to_string(), ms(t0.elapsed())]);

    // Rule firing over 10k tuples.
    let rule = codb_relational::parse_rule("t(X, Y) <- a(X, Y), Y > 5000.").unwrap();
    let t0 = Instant::now();
    let firings = rule.fire(&inst).unwrap();
    t.row(vec!["rule fire (filter) 10k".into(), firings.len().to_string(), ms(t0.elapsed())]);
    t
}

/// E12 — failure injection: message loss with ARQ retransmission.
pub fn e12() -> Table {
    let mut t = Table::new(
        "E12 — update under message loss (chain-6, 200 tuples/node)",
        &["loss %", "sim total", "protocol msgs", "retransmits", "dropped", "tuples added"],
    );
    for loss in [0.0f64, 0.05, 0.10, 0.20] {
        let s = scenario(Topology::Chain(6), 200);
        let pipe = PipeConfig::lan().with_loss(loss);
        let sim = SimConfig { seed: 99, default_pipe: pipe, max_events: 10_000_000 };
        let settings =
            NodeSettings { retransmit_after: SimTime::from_millis(20), pipe, ..Default::default() };
        let mut net = CoDbNetwork::build_with(s.build_config(), sim, settings, false).unwrap();
        let o = net.run_update(s.sink());
        let retransmits: u64 = net
            .network_report()
            .nodes
            .values()
            .map(|n| n.messages_sent.get("retransmit").copied().unwrap_or(0))
            .sum();
        t.row(vec![
            format!("{:.0}", loss * 100.0),
            o.summary.total_time.to_string(),
            o.messages.to_string(),
            retransmits.to_string(),
            net.sim().stats().dropped.to_string(),
            o.summary.tuples_added.to_string(),
        ]);
    }
    t
}

/// E13 — query-dependent (scoped) updates vs global updates: a star where
/// the query touches one branch.
pub fn e13() -> Table {
    let mut t = Table::new(
        "E13 — scoped (query-dependent) vs global update (star, 500 tuples/node)",
        &["leaves", "global msgs", "global bytes", "scoped msgs", "scoped bytes", "msg ratio"],
    );
    for leaves in [2usize, 4, 8, 16] {
        let s = scenario(Topology::Star { leaves }, 500);
        // Global update.
        let mut g_net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
        let g = g_net.run_update(s.sink());
        // Scoped update demanding a single leaf's relation... the hub's own
        // relation r0 is fed by every leaf, so to scope to one branch we
        // demand a config where only leaf 1's rule feeds a dedicated hub
        // relation. Build it by hand from the star config.
        let mut config = s.build_config();
        // Give the hub one extra relation per leaf and retarget each rule.
        use codb_relational::{RelationSchema, ValueType};
        for (i, rule) in config.rules.iter_mut().enumerate() {
            let rel = format!("branch{i}");
            config.nodes[0]
                .schema
                .add(RelationSchema::with_types(&rel, &[ValueType::Int, ValueType::Int]));
            for atom in &mut rule.rule.head {
                atom.relation = rel.clone();
            }
        }
        config.validate().unwrap();
        let mut s_net = CoDbNetwork::build(config, SimConfig::default()).unwrap();
        let sc = s_net.run_scoped_update(s.sink(), vec!["branch0".to_owned()]);
        t.row(vec![
            leaves.to_string(),
            g.messages.to_string(),
            g.bytes.to_string(),
            sc.messages.to_string(),
            sc.bytes.to_string(),
            format!("{:.1}x", g.messages as f64 / sc.messages.max(1) as f64),
        ]);
    }
    t
}

/// E14 — join-body rules (full conjunctive-query bodies) vs copy rules.
pub fn e14() -> Table {
    let mut t = Table::new(
        "E14 — join-body rules vs copy rules (chain-6, 500 tuples/node)",
        &["style", "sim total", "data msgs", "tuples added", "host ms"],
    );
    for (name, style) in [
        ("copy", RuleStyle::CopyGav),
        ("join (domain 16)", RuleStyle::JoinGav { join_domain: 16 }),
        ("join (domain 256)", RuleStyle::JoinGav { join_domain: 256 }),
    ] {
        let s = Scenario { rule_style: style, ..scenario(Topology::Chain(6), 500) };
        let (o, host, _) = run_update(&s);
        t.row(vec![
            name.to_string(),
            o.summary.total_time.to_string(),
            o.summary.data_messages.to_string(),
            o.summary.tuples_added.to_string(),
            ms(host),
        ]);
    }
    t
}

/// E15 — incremental repeated updates: persistent sender caches vs
/// re-shipping everything.
pub fn e15() -> Table {
    let mut t = Table::new(
        "E15 — repeated updates: incremental vs full re-send (chain-8, 500 tuples/node)",
        &["mode", "1st msgs", "2nd msgs", "2nd data msgs", "2nd bytes", "2nd tuples"],
    );
    for (name, incremental) in [("incremental", true), ("full re-send", false)] {
        let s = scenario(Topology::Chain(8), 500);
        let settings = NodeSettings { incremental_updates: incremental, ..Default::default() };
        let mut net =
            CoDbNetwork::build_with(s.build_config(), SimConfig::default(), settings, false)
                .unwrap();
        let first = net.run_update(s.sink());
        let second = net.run_update(s.sink());
        t.row(vec![
            name.to_string(),
            first.messages.to_string(),
            second.messages.to_string(),
            second.summary.data_messages.to_string(),
            second.bytes.to_string(),
            second.summary.tuples_added.to_string(),
        ]);
    }
    t
}

/// E16 — bandwidth-constrained pipes: with finite bandwidth, simulated
/// update time scales with the data volume (complements E8, where
/// infinite-bandwidth pipes made time volume-independent).
pub fn e16() -> Table {
    let mut t = Table::new(
        "E16 — update time under 1 MB/s pipes (chain-8)",
        &["tuples/node", "sim total", "data bytes", "sim ms per MB"],
    );
    for tuples in [100usize, 500, 2_000] {
        let s = scenario(Topology::Chain(8), tuples);
        let pipe = PipeConfig::lan().with_bandwidth(1_000_000);
        let settings = NodeSettings { pipe, ..Default::default() };
        let sim = SimConfig { seed: 1, default_pipe: pipe, max_events: 0 };
        let mut net = CoDbNetwork::build_with(s.build_config(), sim, settings, false).unwrap();
        let o = net.run_update(s.sink());
        let mb = o.summary.data_bytes as f64 / 1e6;
        t.row(vec![
            tuples.to_string(),
            o.summary.total_time.to_string(),
            o.summary.data_bytes.to_string(),
            format!("{:.1}", o.summary.total_time.as_secs_f64() * 1e3 / mb.max(1e-9)),
        ]);
    }
    t
}

/// E17 — durable-store recovery: WAL replay cost vs checkpoint (snapshot)
/// interval **per on-disk codec**, plus the **rejoin cost** of bringing
/// the recovered node back as a first-class peer. The first half is
/// synthetic: a node applies 1000 firing batches through a
/// [`codb_store::Store`] in the row's codec; the table reports the
/// on-disk footprint (snapshot + WAL bytes of the surviving generation)
/// and the recovery time/rate — recovery replays whatever the last
/// checkpoint did not compact, and must reproduce the live state exactly
/// (asserted — an end-to-end format check). Comparing a `json` row with
/// its `binary` twin isolates the encoding: same records, same
/// generations, smaller files and faster loads. The last column composes
/// durability with incremental propagation (the E15 axis): a chain-4
/// network with `incremental_updates: true` crashes a node mid-update
/// (checkpointing it at a cadence matching the row, stores in the row's
/// codec), restarts it from disk, has the *recovered node* initiate the
/// reconvergence update, and reports the rejoin cost in messages — the
/// `Rejoin`/`RejoinAck` handshake plus the one-off full re-send overhead
/// relative to a never-crashed control — next to the **barrier cost**:
/// the messages survivors parked behind the rejoin barrier and released
/// at the handshake plus the `RejoinRepair` re-sends that close the
/// forwarded-but-unsynced window.
pub fn e17() -> Table {
    use codb_relational::glav::TField;
    use codb_relational::{RelationSchema, Snapshot, Value, ValueType};
    use codb_store::{
        Codec, ProtocolCounters, RecvCaches, ScratchDir, Store, SyncPolicy, WalRecord,
    };
    use codb_workload::{run_crash_restart, CrashRestartPlan};

    let mut t = Table::new(
        "E17 — recovery: encoding × WAL replay vs checkpoint interval (1000 batches, 4 firings \
         each) + rejoin cost (chain-4, recovered node initiates)",
        &[
            "codec",
            "checkpoint every (batches)",
            "generations",
            "wal records",
            "snap bytes",
            "wal bytes",
            "recover ms",
            "records/s",
            "tuples",
            "victim ckpt (events)",
            "rejoin cost (msgs)",
            "barrier cost (msgs)",
            "ingest/recover ms (traced)",
        ],
    );
    const BATCHES: u64 = 1000;
    const PER_BATCH: i64 = 4;
    for codec in [Codec::Json, Codec::Binary] {
        for interval in [0u64, 250, 50, 10] {
            let dir = ScratchDir::new("e17");
            let (tracer, phases) = crate::phases::PhaseRecorder::tracer();
            let mut inst = Instance::new();
            inst.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Int]));
            let mut nulls = NullFactory::new(7);
            let mut recv = RecvCaches::new();
            let mut store = Store::create(
                dir.path(),
                &Snapshot::capture(&inst, &nulls),
                &recv,
                &ProtocolCounters::default(),
                SyncPolicy::Never,
                codec,
            )
            .unwrap();
            store.attach_tracer(&tracer);
            tracer.phase_begin("ingest");
            for b in 0..BATCHES {
                let firings: Vec<RuleFiring> = (0..PER_BATCH)
                    .map(|k| RuleFiring {
                        atoms: vec![(
                            "r".to_owned(),
                            vec![
                                TField::Const(Value::Int(b as i64 * PER_BATCH + k)),
                                TField::Fresh(0),
                            ],
                        )],
                    })
                    .collect();
                let cache = recv.entry("e".to_owned()).or_default();
                let fresh: Vec<RuleFiring> =
                    firings.into_iter().filter(|f| cache.insert(f.clone())).collect();
                store
                    .append(&WalRecord::Applied { rule: "e".to_owned(), firings: fresh.clone() })
                    .unwrap();
                codb_relational::apply_firings(&mut inst, &fresh, &mut nulls).unwrap();
                if interval > 0 && (b + 1) % interval == 0 {
                    store
                        .checkpoint(
                            &Snapshot::capture(&inst, &nulls),
                            &recv,
                            &ProtocolCounters::default(),
                        )
                        .unwrap();
                }
            }
            store.sync().unwrap();
            tracer.phase_end("ingest");
            let generations = store.generation() + 1;
            let wal_records = store.wal_records();
            drop(store);
            // On-disk footprint of the surviving generation — the codec's
            // size lever, straight from the filesystem.
            let (snap_bytes, wal_bytes) = dir_footprint(dir.path());

            let t0 = Instant::now();
            let (_reopened, rec) = tracer
                .phase("recover", || Store::open(dir.path(), SyncPolicy::Never, codec))
                .unwrap();
            let elapsed = t0.elapsed();
            assert_eq!(rec.instance, inst, "recovery must reproduce the live state");
            assert_eq!(rec.nulls.invented(), nulls.invented());
            assert_eq!(rec.snapshot_codec, codec, "the store is end-to-end in the row's codec");
            let rate = rec.wal_records_replayed as f64 / elapsed.as_secs_f64().max(1e-9);

            // Rejoin cost at an analogous checkpoint cadence. The units
            // differ deliberately and each gets its own column: the
            // synthetic half checkpoints per *applied batch*, the crash
            // half per *simulator event* of the doomed update (scaled down
            // so every non-`never` row checkpoints at least once before
            // the kill).
            let victim_ckpt = (interval > 0).then_some((interval / 10).max(2));
            let crash_dir = ScratchDir::new("e17-rejoin");
            let s = codb_workload::Scenario {
                tuples_per_node: 20,
                ..codb_workload::Scenario::quick(codb_workload::Topology::Chain(4))
            };
            let plan = CrashRestartPlan {
                recovered_initiates: true,
                checkpoint_victim_every: victim_ckpt,
                codec,
                ..CrashRestartPlan::new(s, codb_core::NodeId(1))
            };
            let report = run_crash_restart(&plan, crash_dir.path()).unwrap();
            assert!(report.recovered_exactly(), "E17 rejoin run must reconverge: {report:?}");

            t.row(vec![
                codec.to_string(),
                if interval == 0 { "never".to_owned() } else { interval.to_string() },
                generations.to_string(),
                wal_records.to_string(),
                snap_bytes.to_string(),
                wal_bytes.to_string(),
                ms(elapsed),
                format!("{rate:.0}"),
                rec.instance.tuple_count().to_string(),
                victim_ckpt.map_or("never".to_owned(), |e| e.to_string()),
                report.rejoin_cost_messages().to_string(),
                report.barrier_cost_messages().to_string(),
                {
                    let s = crate::phases::phase_summary(&phases);
                    format!(
                        "{}/{}",
                        crate::phases::phase_ms(&s, "ingest"),
                        crate::phases::phase_ms(&s, "recover")
                    )
                },
            ]);
        }
    }
    t
}

/// One E18 measurement: a many-node single-host ingest driven through a
/// [`CoDbNetwork`] whose nodes persist under `policy`, with `total`
/// local inserts distributed per `workload`. Returns
/// `(wal_records, fsyncs, acked, host_time)`.
fn e18_run(
    nodes: usize,
    workload: E18Workload,
    policy: codb_store::SyncPolicy,
    total: u64,
) -> (u64, u64, u64, Duration) {
    use codb_core::NodeId;
    use codb_store::{Codec, ScratchDir};
    use codb_workload::Topology;

    let dir = ScratchDir::new("e18");
    let s = Scenario { tuples_per_node: 1, ..Scenario::quick(Topology::Chain(nodes)) };
    let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
    net.open_persistence_all(dir.path(), policy, Codec::Binary).unwrap();

    let t0 = Instant::now();
    for k in 0..total {
        // The write target: round-robin spreads every consecutive record
        // to a different store (the scheduler's worst case — drains find
        // every store dirty); bursts keep consecutive records on one
        // store (the realistic update-wave shape group commit coalesces).
        let target = match workload {
            E18Workload::RoundRobin => k % nodes as u64,
            E18Workload::Bursty { burst } => (k / burst).wrapping_mul(7) % nodes as u64,
        };
        let rel = Scenario::relation_of(target as usize);
        net.sim_mut()
            .peer_mut(NodeId(target).peer())
            .expect("node alive")
            .insert_local(&rel, codb_relational::tup![k as i64, target as i64])
            .expect("schema accepts (int, int)");
    }
    let host = t0.elapsed();

    let ids: Vec<NodeId> = (0..nodes as u64).map(NodeId).collect();
    let records: u64 = ids.iter().map(|&id| net.node(id).store().unwrap().wal_records()).sum();
    let acked: u64 =
        ids.iter().map(|&id| net.node(id).store().unwrap().durable_wal_records()).sum();
    // Fsyncs on the WAL append path: per-store writers count their own;
    // shared group-commit drains are counted once, by the scheduler.
    let writer_fsyncs: u64 = ids.iter().map(|&id| net.node(id).store().unwrap().wal_fsyncs()).sum();
    let sched_fsyncs = net.fsync_scheduler().map_or(0, |s| s.stats().fsyncs);
    (records, writer_fsyncs + sched_fsyncs, acked, host)
}

/// How E18 distributes its inserts across the host's stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum E18Workload {
    /// Every consecutive record hits a different store.
    RoundRobin,
    /// `burst` consecutive records per store before moving on.
    Bursty {
        /// Records per burst.
        burst: u64,
    },
}

impl std::fmt::Display for E18Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            E18Workload::RoundRobin => write!(f, "round-robin"),
            E18Workload::Bursty { burst } => write!(f, "bursty({burst})"),
        }
    }
}

/// E18 — shared group commit vs per-node fsync policies on a many-node
/// single-host ingest. All policies obey the same **ack rule** (a record
/// is durable only once an fsync covers it — `docs/DURABILITY.md`):
/// `everyN:1` acks each record before the append returns, and the shared
/// scheduler defers acks within a bounded host-wide window
/// (`max_records = 8 × nodes`) while coalescing each drain into one
/// fsync per dirty store. The table shows the scheduler beating the
/// per-record-ack baseline by ~an order of magnitude everywhere, and
/// beating per-node `everyN:8` (whose host-wide window is the same
/// `8 × nodes` records) whenever writes arrive in bursts — the
/// update-wave shape — while matching it in the adversarial perfectly
/// interleaved case. The no-acked-loss half of the story is proved by
/// the host-crash faultplan (`codb_workload::faultplan`), smoke-run
/// here: the host dies mid-update, every unsynced WAL tail is
/// destroyed, and every acked record must recover.
pub fn e18() -> Table {
    use codb_store::SyncPolicy;

    let mut t = Table::new(
        "E18 — shared group-commit fsync scheduler vs per-node policies (single host, 1920 \
         inserts; group window = 8×nodes records)",
        &[
            "workload",
            "nodes",
            "policy",
            "wal records",
            "fsyncs",
            "records/fsync",
            "acked at end",
            "host ms",
        ],
    );
    const TOTAL: u64 = 1920;
    const BURST: u64 = 32;
    for workload in [E18Workload::Bursty { burst: BURST }, E18Workload::RoundRobin] {
        for nodes in [8usize, 16] {
            let group_policy =
                SyncPolicy::GroupCommit { max_batch: 64, max_records: 8 * nodes as u64 };
            let policies = [
                ("everyN:1 (per-record ack)", SyncPolicy::EveryN(1)),
                ("everyN:8 (per-node)", SyncPolicy::EveryN(8)),
                ("group (shared)", group_policy),
            ];
            let mut fsyncs_by_policy = Vec::new();
            for (label, policy) in policies {
                let (records, fsyncs, acked, host) = e18_run(nodes, workload, policy, TOTAL);
                fsyncs_by_policy.push(fsyncs);
                t.row(vec![
                    workload.to_string(),
                    nodes.to_string(),
                    label.to_string(),
                    records.to_string(),
                    fsyncs.to_string(),
                    format!("{:.1}", records as f64 / fsyncs.max(1) as f64),
                    acked.to_string(),
                    ms(host),
                ]);
            }
            // The acceptance bar, enforced on every run of this table.
            let (every1, every8, group) =
                (fsyncs_by_policy[0], fsyncs_by_policy[1], fsyncs_by_policy[2]);
            assert!(
                group < every1,
                "group commit must beat per-record-ack everyN:1 ({workload}, {nodes} nodes): \
                 {group} vs {every1}"
            );
            assert!(
                group <= every8,
                "group commit must never lose to everyN:8 at an equal host-wide window \
                 ({workload}, {nodes} nodes): {group} vs {every8}"
            );
            if matches!(workload, E18Workload::Bursty { .. }) {
                assert!(
                    group < every8,
                    "bursty writes must coalesce ({nodes} nodes): {group} vs {every8}"
                );
            }
        }
    }

    // The durability half: a seeded host crash mid-update under the
    // shared scheduler, with every unsynced WAL tail destroyed — no
    // acked record may be lost, and the network must reconverge.
    let crash_dir = codb_store::ScratchDir::new("e18-crash");
    let s = Scenario { tuples_per_node: 12, ..Scenario::quick(codb_workload::Topology::Chain(8)) };
    let plan = codb_workload::FaultPlan::host_crash_group_commit(s, 0xE18);
    let report = codb_workload::run_fault_plan(&plan, crash_dir.path()).unwrap();
    assert!(report.acked_records_preserved, "E18 host-crash check: {report:?}");
    assert!(report.converged, "E18 host-crash check: {report:?}");
    t.row(vec![
        "host-crash faultplan".into(),
        "8".into(),
        "group (shared)".into(),
        format!("{} acked checked", report.acked_records_checked),
        "-".into(),
        "-".into(),
        "all preserved".into(),
        "-".into(),
    ]);
    t
}

/// One E19 row: floods `waves` waves over `topology` and reports the
/// simulator's throughput.
fn e19_row(
    t: &mut Table,
    label: &str,
    topology: &Topology,
    latency: Option<codb_net::LatencyModel>,
    waves: u32,
) -> codb_workload::FloodReport {
    let (tracer, phases) = crate::phases::PhaseRecorder::tracer();
    let report = codb_workload::run_flood_traced(
        topology,
        PipeConfig::lan(),
        latency,
        waves,
        0xE19,
        &tracer,
    );
    assert_eq!(
        report.reached, report.nodes,
        "E19 acceptance: the flood must reach every node of {label}"
    );
    let summary = crate::phases::phase_summary(&phases);
    t.row(vec![
        label.to_string(),
        report.nodes.to_string(),
        report.edges.to_string(),
        report.messages.to_string(),
        report.events.to_string(),
        format!("{:.0}k", report.events_per_sec() / 1e3),
        report.sim_time.to_string(),
        format!("{:.1}", report.host_ms),
        crate::phases::phase_ms(&summary, "build"),
        crate::phases::phase_ms(&summary, "flood"),
    ]);
    t.pipe_totals(label, &report.stats, 8);
    report
}

/// E19 — simulator scalability: node-count sweep over chain, scale-free
/// and geo-placed topologies, flooding gossip waves to quiescence. The
/// subject under measurement is the simulator hot path itself (calendar
/// event queue + pipe arena), not the database protocol — the flood's
/// message complexity is known in closed form (`waves × 2 × edges`), so
/// events/sec isolates event-loop cost. The geo rows derive per-link
/// latency from great-circle distance between seeded lat/long
/// placements; that reshapes the *time* axis (intercontinental hops
/// dominate) while leaving the message complexity untouched.
pub fn e19() -> Table {
    let mut t = e19_table();
    for n in [100usize, 1_000, 10_000] {
        e19_row(&mut t, &format!("chain-{n}"), &Topology::Chain(n), None, 2);
    }
    for n in [100usize, 1_000, 10_000] {
        let topo = Topology::ScaleFree { n, m: 3, seed: 0x5CA1E };
        e19_row(&mut t, &topo.to_string(), &topo, None, 2);
    }
    let rg = Topology::RingGradient { n: 4_096, chords: 6 };
    e19_row(&mut t, &rg.to_string(), &rg, None, 2);
    for n in [1_000usize, 10_000] {
        let topo = Topology::ScaleFree { n, m: 3, seed: 0x5CA1E };
        e19_row(
            &mut t,
            &format!("{topo}+geo"),
            &topo,
            Some(codb_net::LatencyModel::geo_scattered(0x6E0, n)),
            2,
        );
    }
    t
}

/// The E19 acceptance smoke (`exp e19-quick`, run in CI): a 100 → 10k
/// chain sweep plus one scale-free and one geo row, asserting the
/// 10k-node chain reaches quiescence within the 10 s budget.
pub fn e19_quick() -> Table {
    let mut t = e19_table();
    for n in [100usize, 1_000, 10_000] {
        let report = e19_row(&mut t, &format!("chain-{n}"), &Topology::Chain(n), None, 1);
        if n == 10_000 {
            assert!(
                report.host_ms < 10_000.0,
                "E19 acceptance: 10k-node chain must reach quiescence in under 10s, took \
                 {:.0} ms",
                report.host_ms
            );
        }
    }
    let sf = Topology::ScaleFree { n: 1_000, m: 3, seed: 0x5CA1E };
    e19_row(&mut t, &sf.to_string(), &sf, None, 1);
    e19_row(
        &mut t,
        &format!("{sf}+geo"),
        &sf,
        Some(codb_net::LatencyModel::geo_scattered(0x6E0, 1_000)),
        1,
    );
    t
}

fn e19_table() -> Table {
    Table::new(
        "E19 — simulator scalability: flood waves to quiescence (LAN pipes; geo rows use \
         great-circle latency)",
        &[
            "topology",
            "nodes",
            "edges",
            "messages",
            "events",
            "events/s",
            "sim total",
            "host ms",
            "build ms",
            "flood ms",
        ],
    )
}

/// One E20 cell: the sustained-ingest workload at a node/worker count.
fn e20_plan(nodes: usize, workers: usize, inserts: usize, rounds: usize) -> ParallelIngestPlan {
    ParallelIngestPlan {
        scenario: Scenario {
            topology: Topology::Chain(nodes),
            tuples_per_node: 5,
            rule_style: RuleStyle::CopyGav,
            dist: DataDist::Uniform { domain: 1 << 40 },
            seed: 0xE20,
        },
        workers,
        mailbox_depth: 256,
        inserts_per_node: inserts,
        rounds,
        seed: 0xE20,
    }
}

fn e20_table() -> Table {
    Table::new(
        "E20 — sustained ingest on the sharded threaded runtime (chain, mailbox depth 256; \
         every cell checked against the simulator fixpoint)",
        &[
            "nodes",
            "workers",
            "inserts",
            "updates/s",
            "speedup vs 1w",
            "mailbox peak",
            "undeliv",
            "lost",
            "host ms",
        ],
    )
}

/// Runs one E20 cell, asserts its correctness bars (zero lost updates,
/// zero undeliverable messages, simulator-equal fixpoint) and appends the
/// throughput row. `base` is the 1-worker updates/sec for the speedup
/// column.
fn e20_row(t: &mut Table, plan: &ParallelIngestPlan, base: Option<f64>) -> f64 {
    let r = codb_workload::run_parallel_ingest(plan);
    assert_eq!(r.lost_updates, 0, "E20: lost updates at {} nodes / {} workers", r.nodes, r.workers);
    assert_eq!(
        r.undeliverable, 0,
        "E20: undeliverable at {} nodes / {} workers",
        r.nodes, r.workers
    );
    assert!(r.converged, "E20: fixpoint diverged at {} nodes / {} workers", r.nodes, r.workers);
    assert!(r.mailbox_peak <= plan.mailbox_depth, "E20: mailbox bound violated");
    t.row(vec![
        r.nodes.to_string(),
        r.workers.to_string(),
        r.inserts.to_string(),
        format!("{:.0}", r.updates_per_sec),
        base.map_or("-".into(), |b| format!("{:.2}x", r.updates_per_sec / b.max(1e-9))),
        r.mailbox_peak.to_string(),
        r.undeliverable.to_string(),
        r.lost_updates.to_string(),
        ms(r.elapsed),
    ]);
    r.updates_per_sec
}

/// E20 — sustained-ingest throughput of the sharded worker runtime:
/// updates/sec over node count × worker count, every cell verified
/// against the simulator's fixpoint (same `CoDbNode` state machines, same
/// `IngestLocal` message plane) with zero lost updates and the bounded
/// mailbox never exceeded. The worker-scaling acceptance bar (8 workers ≥
/// 3× 1 worker on ≥16 nodes) is asserted only when the host actually has
/// ≥4 cores — on smaller machines the sweep still runs and the
/// correctness bars still hold, but a speedup assertion would measure the
/// scheduler's oversubscription, not the runtime. The durability half —
/// host crash under group commit with the unsynced WAL tails destroyed,
/// zero acked updates lost — rides in `e20-quick` (CI) and the
/// `codb_workload::parallel` tests.
pub fn e20() -> Table {
    let mut t = e20_table();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for nodes in [8usize, 16, 32, 64] {
        let mut base = None;
        let mut by_workers = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let ups = e20_row(&mut t, &e20_plan(nodes, workers, 10, 2), base);
            if workers == 1 {
                base = Some(ups);
            }
            by_workers.push((workers, ups));
        }
        if nodes >= 16 && cores >= 4 {
            let one = by_workers[0].1;
            let eight = by_workers[3].1;
            assert!(
                eight >= 3.0 * one,
                "E20 acceptance: 8 workers must deliver >=3x 1-worker throughput on {nodes} \
                 nodes ({eight:.0} vs {one:.0} updates/s)"
            );
        }
    }
    if cores < 4 {
        t.row(vec![
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("skipped ({cores} cores)"),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    t
}

/// The E20 acceptance smoke (`exp e20-quick`, run in CI): a small grid
/// covering two worker counts with the full correctness bars (zero lost
/// updates, simulator-equal fixpoint, mailbox bound), plus the host-crash
/// durability row — the pool killed without drain, every WAL's unsynced
/// tail chopped, recovery must preserve every acked record.
pub fn e20_quick() -> Table {
    let mut t = e20_table();
    let mut base = None;
    for workers in [1usize, 2] {
        let ups = e20_row(&mut t, &e20_plan(6, workers, 8, 2), base);
        if workers == 1 {
            base = Some(ups);
        }
    }
    let crash_dir = codb_store::ScratchDir::new("e20-crash");
    let report =
        codb_workload::run_parallel_host_crash(&e20_plan(6, 2, 8, 2), crash_dir.path()).unwrap();
    assert!(report.acked_records_checked > 0, "E20 host-crash check: {report:?}");
    assert!(report.acked_records_preserved, "E20 host-crash check: {report:?}");
    assert!(report.post_restart_quiesced, "E20 host-crash check: {report:?}");
    t.row(vec![
        "6 (host-crash)".into(),
        "2".into(),
        format!("{} acked checked", report.acked_records_checked),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "0 (all preserved)".into(),
        "-".into(),
    ]);
    t
}

/// Total bytes of `.snap` and `.wal` files in a store directory.
fn dir_footprint(dir: &std::path::Path) -> (u64, u64) {
    let (mut snap, mut wal) = (0u64, 0u64);
    for entry in std::fs::read_dir(dir).into_iter().flatten().flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Ok(meta) = entry.metadata() else { continue };
        if name.ends_with(".snap") {
            snap += meta.len();
        } else if name.ends_with(".wal") {
            wal += meta.len();
        }
    }
    (snap, wal)
}

/// All experiments in id order.
pub fn all() -> Vec<Table> {
    vec![
        e1(),
        e2(),
        e3(),
        e4(),
        e5(),
        e6(),
        e7(),
        e8(),
        e9(),
        e10(),
        e11(),
        e12(),
        e13(),
        e14(),
        e15(),
        e16(),
        e17(),
        e18(),
        e19(),
        e20(),
    ]
}

/// Runs one experiment by id (`"e1"` … `"e20"`, plus `"e19-quick"` /
/// `"e20-quick"` for the CI-sized acceptance smokes).
pub fn by_id(id: &str) -> Option<Table> {
    match id {
        "e1" => Some(e1()),
        "e2" => Some(e2()),
        "e3" => Some(e3()),
        "e4" => Some(e4()),
        "e5" => Some(e5()),
        "e6" => Some(e6()),
        "e7" => Some(e7()),
        "e8" => Some(e8()),
        "e9" => Some(e9()),
        "e10" => Some(e10()),
        "e11" => Some(e11()),
        "e12" => Some(e12()),
        "e13" => Some(e13()),
        "e14" => Some(e14()),
        "e15" => Some(e15()),
        "e16" => Some(e16()),
        "e17" => Some(e17()),
        "e18" => Some(e18()),
        "e19" => Some(e19()),
        "e19-quick" => Some(e19_quick()),
        "e20" => Some(e20()),
        "e20-quick" => Some(e20_quick()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chase_variants_agree_on_counts() {
        let s = scenario(Topology::Ring(4), 20);
        let config = s.build_config();
        let (nd, _, _) = chase_naive(&config);
        let (sd, _, _) = chase_seminaive(&config);
        // Semi-naive never computes more derivations than naive.
        assert!(sd <= nd, "semi-naive {sd} > naive {nd}");
        assert!(sd > 0);
    }

    #[test]
    fn by_id_covers_all_ids() {
        for i in 1..=20 {
            assert!(by_id(&format!("e{i}")).is_some(), "e{i} missing");
        }
        assert!(by_id("e19-quick").is_some());
        assert!(by_id("e20-quick").is_some());
        assert!(by_id("e21").is_none());
    }

    #[test]
    fn small_experiment_renders() {
        let t = e4();
        let s = t.render();
        assert!(s.contains("chain-4"));
        assert!(s.contains("measured"));
    }
}
