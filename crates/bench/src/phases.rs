//! Constant-memory phase capture for experiment tables.
//!
//! Experiment rows want to attribute host time to run phases (build,
//! flood, ingest, recover …) without paying for — or bounding — a full
//! event recording: a 10k-node flood emits hundreds of thousands of net
//! events, and a last-N ring would evict the early `PhaseBegin` markers.
//! [`PhaseRecorder`] is a [`TraceSink`] that keeps *only* phase markers
//! (and the intern events naming them), so its memory is proportional to
//! the number of phases, not the run size.

use codb_trace::{Summary, TraceEvent, TraceFile, TraceSink, Tracer};
use std::sync::{Arc, Mutex};

/// A [`TraceSink`] retaining only [`TraceEvent::Intern`],
/// [`TraceEvent::PhaseBegin`] and [`TraceEvent::PhaseEnd`]; everything
/// else is counted and dropped. Full-fidelity recording is what
/// [`codb_trace::FileRecorder`] / [`codb_trace::RingRecorder`] are for.
#[derive(Debug, Default)]
pub struct PhaseRecorder {
    events: Vec<(u64, TraceEvent)>,
    /// Events seen but not retained.
    dropped: u64,
}

impl PhaseRecorder {
    /// A tracer recording phases into a fresh recorder (keep the second
    /// handle to read the result back via [`phase_summary`]).
    pub fn tracer() -> (Tracer, Arc<Mutex<PhaseRecorder>>) {
        let rec = Arc::new(Mutex::new(PhaseRecorder::default()));
        (Tracer::new(rec.clone()), rec)
    }

    /// Events seen but not retained (the non-phase bulk of the run).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for PhaseRecorder {
    fn record(&mut self, at: u64, ev: &TraceEvent) {
        match ev {
            TraceEvent::Intern { .. }
            | TraceEvent::PhaseBegin { .. }
            | TraceEvent::PhaseEnd { .. } => self.events.push((at, ev.clone())),
            _ => self.dropped += 1,
        }
    }
}

/// Folds the recorded phase markers into a [`Summary`]. Only the phase
/// fields are meaningful — the recorder dropped every other event.
pub fn phase_summary(rec: &Arc<Mutex<PhaseRecorder>>) -> Summary {
    let guard = rec.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    Summary::from_trace(&TraceFile { events: guard.events.clone(), torn: false })
}

/// Host milliseconds of completed phase `name`, or `-` when the phase
/// never closed (a table cell, not a number, on purpose).
pub fn phase_ms(summary: &Summary, name: &str) -> String {
    match summary.phase_host_nanos(name) {
        Some(ns) => format!("{:.1}", ns as f64 / 1e6),
        None => "-".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_phases_drops_bulk() {
        let (tracer, rec) = PhaseRecorder::tracer();
        tracer.phase("work", || {
            for i in 0..1000 {
                tracer.emit(TraceEvent::NetSend { from: i, to: i + 1, bytes: 8 });
            }
        });
        let s = phase_summary(&rec);
        assert!(s.phase_host_nanos("work").is_some());
        assert_eq!(rec.lock().unwrap().dropped(), 1000);
        assert_ne!(phase_ms(&s, "work"), "-");
        assert_eq!(phase_ms(&s, "absent"), "-");
    }
}
