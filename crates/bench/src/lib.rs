//! # codb-bench
//!
//! The benchmark harness regenerating every experiment of the coDB
//! reproduction (DESIGN.md §4). [`experiments`] holds one function per
//! experiment id; the `exp` binary prints the tables; the Criterion
//! benches in `benches/` measure the host-time distributions of the same
//! runs.

#![warn(missing_docs)]

pub mod experiments;
pub mod phases;
pub mod table;
pub mod timeline;

pub use experiments::{all, by_id};
pub use phases::{phase_ms, phase_summary, PhaseRecorder};
pub use table::{PipeTotals, Table};
pub use timeline::render_timeline;
